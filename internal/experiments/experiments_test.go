package experiments

import (
	"strings"
	"testing"

	"repro/internal/simfleet"
)

// testCtx builds one small shared context per test binary.
var cached *Context

func testCtx(t *testing.T) *Context {
	t.Helper()
	if cached == nil {
		cfg := simfleet.DefaultConfig()
		cfg.FailureScale = 0.04
		cfg.Days = 150
		c, err := NewContextWith(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cached = c
	}
	return cached
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artefact must be covered.
	want := []string{
		"table1", "table2", "table5", "table6",
		"fig2", "fig3", "fig4", "fig5", "fig6",
		"fig9", "fig10", "fig11", "fig12",
		"fig17", "fig18", "fig19", "fig20",
		"theta", "gaps", "segmentation", "crossval", "ratio", "cumulative", "poswindow",
		"gridsearch", "importance", "channels", "seeds", "costs",
	}
	names := Names()
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
	for _, r := range Registry() {
		if r.Description == "" || r.Run == nil {
			t.Errorf("runner %q incomplete", r.Name)
		}
	}
	if _, ok := Lookup("fig9"); !ok {
		t.Error("Lookup(fig9) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestTableI(t *testing.T) {
	res, err := testCtx(t).TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(res.Rows))
	}
	total := res.DriveLevelShare + res.SystemLevelShare
	if total < 0.999 || total > 1.001 {
		t.Fatalf("level shares sum to %g", total)
	}
	// With enough tickets the observed split lands near 32/68.
	if res.Tickets > 300 && (res.DriveLevelShare < 0.2 || res.DriveLevelShare > 0.45) {
		t.Fatalf("drive-level share = %g, want ≈0.32", res.DriveLevelShare)
	}
	if !strings.Contains(res.String(), "Drive level total") {
		t.Fatal("rendering incomplete")
	}
}

func TestTableII(t *testing.T) {
	res, err := testCtx(t).TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attributes) != 16 {
		t.Fatalf("attributes = %d", len(res.Attributes))
	}
}

func TestTableV(t *testing.T) {
	res, err := testCtx(t).TableV()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Table V: SFWB = 16 SMART + 1 F + 5 W + 23 B.
	top := res.Rows[0]
	if top.SMART != 16 || top.Firmware != 1 || top.WEvents != 5 || top.BSOD != 23 {
		t.Fatalf("SFWB row = %+v", top)
	}
	if !strings.Contains(res.String(), "NaN") {
		t.Fatal("absent families should render as NaN like the paper")
	}
}

func TestTableVI(t *testing.T) {
	res, err := testCtx(t).TableVI()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("vendors = %d", len(res.Rows))
	}
	if res.Rows[0].Vendor != "I" || res.Rows[0].Population != 270325 {
		t.Fatalf("vendor I row = %+v", res.Rows[0])
	}
	if res.Rows[0].PaperRR < 0.0067 || res.Rows[0].PaperRR > 0.0069 {
		t.Fatalf("vendor I RR = %g", res.Rows[0].PaperRR)
	}
}

func TestFig2Bathtub(t *testing.T) {
	res, err := testCtx(t).Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 {
		t.Fatal("no failures")
	}
	if res.InfantShare() <= 0.1 {
		t.Fatalf("infant share = %g; bathtub needs an infant spike", res.InfantShare())
	}
	if res.WearOutShare() <= 0.1 {
		t.Fatalf("wear-out share = %g", res.WearOutShare())
	}
}

func TestFig3FirmwareMonotone(t *testing.T) {
	res, err := testCtx(t).Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 5+3+2+2 releases
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	// Small fleets are noisy; allow at most a few inversions.
	if v := res.MonotoneViolations(); v > 4 {
		t.Fatalf("%d monotonicity violations", v)
	}
	if !strings.Contains(res.String(), "I_F_1") {
		t.Fatal("rendering incomplete")
	}
}

func TestFig4And5Separation(t *testing.T) {
	c := testCtx(t)
	for name, run := range map[string]func() (*Fig45Result, error){
		"fig4": c.Fig4,
		"fig5": c.Fig5,
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Faulty) == 0 || len(res.Healthy) == 0 {
			t.Fatalf("%s: missing series", name)
		}
		if ratio := res.FinalGapRatio(); ratio < 2 {
			t.Fatalf("%s: faulty/healthy cumulative ratio = %g, want clear separation", name, ratio)
		}
		// Cumulative trajectories never decrease.
		for _, cs := range append(res.Faulty, res.Healthy...) {
			for i := 1; i < len(cs.Values); i++ {
				if cs.Values[i] < cs.Values[i-1] {
					t.Fatalf("%s: cumulative series decreases", name)
				}
			}
		}
	}
}

func TestFig6Discontinuity(t *testing.T) {
	res, err := testCtx(t).Fig6()
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for g := 2; g < len(res.GapHistogram); g++ {
		multi += res.GapHistogram[g]
	}
	if multi == 0 {
		t.Fatal("no multi-day gaps; CSS telemetry must be discontinuous")
	}
	if res.DropCandidates == 0 {
		t.Fatal("no drives qualify for the ≥10-day drop rule")
	}
	if !strings.Contains(res.String(), "drives dropped") {
		t.Fatal("rendering incomplete")
	}
}

func TestFig9ShapeSFWBBeatsS(t *testing.T) {
	res, err := testCtx(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	sfwb, ok1 := res.Row("SFWB")
	s, ok2 := res.Row("S")
	if !ok1 || !ok2 {
		t.Fatal("missing groups")
	}
	// The paper's headline: SFWB beats the SMART-only baseline on both
	// axes. Small fleets are noisy, so compare with slack on TPR and
	// strictly on the combined Youden index.
	if sfwb.TPR-sfwb.FPR <= s.TPR-s.FPR {
		t.Fatalf("SFWB (%.3f/%.3f) does not beat S (%.3f/%.3f)",
			sfwb.TPR, sfwb.FPR, s.TPR, s.FPR)
	}
	if sfwb.AUC < 0.9 {
		t.Fatalf("SFWB AUC = %g", sfwb.AUC)
	}
}

func TestFig19LookaheadDecays(t *testing.T) {
	res, err := testCtx(t).Fig19()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lookahead) == 0 {
		t.Fatal("no lookahead points")
	}
	near := res.TPRAt(1)
	far := res.TPRAt(21)
	if near <= far {
		t.Fatalf("TPR does not decay with lookahead: %g at 1d vs %g at 21d", near, far)
	}
	if !strings.Contains(res.String(), "lookahead") {
		t.Fatal("rendering incomplete")
	}
}

func TestFig20Overhead(t *testing.T) {
	res, err := testCtx(t).Fig20()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 5 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	if res.PredictionsPerSecond < 1000 {
		t.Fatalf("prediction throughput = %g/s; client-side deployment needs far more", res.PredictionsPerSecond)
	}
	for _, s := range res.Stages {
		if s.Stage == "" || s.Items < 0 {
			t.Fatalf("bad stage %+v", s)
		}
	}
	if !strings.Contains(res.String(), "Per-record prediction") {
		t.Fatal("rendering incomplete")
	}
}

func TestRenderHelpers(t *testing.T) {
	tb := newTable("T", "a", "bb")
	tb.addRow("1", "2")
	out := tb.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "bb") {
		t.Fatalf("rendering = %q", out)
	}
	if pct(0.5) != "50.00%" {
		t.Fatal("pct broken")
	}
	if f4(0.12345) != "0.1234" && f4(0.12345) != "0.1235" {
		t.Fatal("f4 broken")
	}
}
