package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml/metrics"
	"repro/internal/sampling"
)

// CostRegime is one operational cost assumption.
type CostRegime struct {
	Name  string
	Model metrics.CostModel
}

// CostRow is the optimal operating point under one regime.
type CostRow struct {
	Regime string
	// Threshold is the cost-optimal decision threshold on the vendor-I
	// ROC; +Inf means "never flag".
	Threshold float64
	TPR       float64
	FPR       float64
	// CostPerDrive is the expected cost per test sample at the optimum,
	// in the regime's (arbitrary) cost units.
	CostPerDrive float64
	// DefaultCost is the cost at the pipeline's calibrated threshold,
	// for comparison.
	DefaultCost float64
}

// CostResult reproduces the economics behind the paper's motivation
// (downtime at $8,851/min; misclassification causing "additional data
// migration, unnecessary service interruption, and latent economic
// losses"): the same trained model yields different optimal operating
// points as the miss/false-alarm cost ratio moves.
type CostResult struct {
	Rows []CostRow
}

// CostStudy trains the standard vendor-I model once and sweeps three
// cost regimes over its test ROC.
func (c *Context) CostStudy() (*CostResult, error) {
	samples, p, err := c.Samples(primaryVendor, features.GroupSFWB)
	if err != nil {
		return nil, err
	}
	train, test := sampling.SplitFraction(samples, p.Config.TrainFrac)
	_ = train
	m, _, err := core.Train(p, test)
	if err != nil {
		return nil, err
	}

	scores := make([]float64, len(test))
	labels := make([]int, len(test))
	pos, neg := 0, 0
	for i := range test {
		scores[i] = m.Predict(test[i].X)
		labels[i] = test[i].Y
		if test[i].Y == 1 {
			pos++
		} else {
			neg++
		}
	}
	roc := metrics.ROCFromScores(scores, labels)

	regimes := []CostRegime{
		{"consumer (miss = lost photos, 50:1)", metrics.CostModel{MissCost: 50, FalseAlarmCost: 1, TruePositiveCost: 0.5}},
		{"balanced (10:1)", metrics.CostModel{MissCost: 10, FalseAlarmCost: 1, TruePositiveCost: 0.5}},
		{"alarm-averse (2:1)", metrics.CostModel{MissCost: 2, FalseAlarmCost: 1, TruePositiveCost: 0.2}},
	}
	res := &CostResult{}
	for _, reg := range regimes {
		thr, cost, err := reg.Model.OptimalThreshold(roc, pos, neg)
		if err != nil {
			return nil, err
		}
		// Realised confusion at the chosen threshold.
		var cm metrics.Confusion
		var def metrics.Confusion
		for i := range scores {
			pred := 0
			if scores[i] >= thr {
				pred = 1
			}
			cm.Add(pred, labels[i])
			predDef := 0
			if scores[i] >= m.Threshold {
				predDef = 1
			}
			def.Add(predDef, labels[i])
		}
		n := float64(len(test))
		res.Rows = append(res.Rows, CostRow{
			Regime:       reg.Name,
			Threshold:    thr,
			TPR:          cm.TPR(),
			FPR:          cm.FPR(),
			CostPerDrive: cost / n,
			DefaultCost:  reg.Model.Expected(def) / n,
		})
	}
	return res, nil
}

// String renders the study.
func (r *CostResult) String() string {
	t := newTable("Cost-sensitive operating points (SFWB+RF, vendor I)",
		"Regime", "Optimal thr", "TPR", "FPR", "Cost/sample", "Cost @ calibrated thr")
	for _, row := range r.Rows {
		thr := f4(row.Threshold)
		if math.IsInf(row.Threshold, 1) {
			thr = "never flag"
		}
		t.addRow(row.Regime, thr, f4(row.TPR), f4(row.FPR),
			f4(row.CostPerDrive), f4(row.DefaultCost))
	}
	return t.String()
}
