package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/features"
)

func TestFig10AllAlgorithmsRun(t *testing.T) {
	res, err := testCtx(t).Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 algorithms", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.IsNaN(row.TPR) || math.IsNaN(row.FPR) {
			t.Errorf("%s produced NaN metrics", row.Name)
		}
		if row.AUC < 0.5 {
			t.Errorf("%s AUC = %g, worse than chance", row.Name, row.AUC)
		}
	}
	rf, ok := res.Row("RF")
	if !ok {
		t.Fatal("RF row missing")
	}
	// The paper's strongest algorithmic claim: the tree ensemble copes
	// with discontinuous data at least as well as the sequence model.
	cnn, ok := res.Row("CNN_LSTM")
	if !ok {
		t.Fatal("CNN_LSTM row missing")
	}
	if rf.TPR-rf.FPR < cnn.TPR-cnn.FPR-0.05 {
		t.Fatalf("RF (%.3f/%.3f) does not dominate CNN_LSTM (%.3f/%.3f)",
			rf.TPR, rf.FPR, cnn.TPR, cnn.FPR)
	}
	if !strings.Contains(res.String(), "RF") {
		t.Fatal("rendering incomplete")
	}
}

func TestFig11VendorsRun(t *testing.T) {
	res, err := testCtx(t).Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 vendors", len(res.Rows))
	}
	vI, ok := res.Row("I")
	if !ok {
		t.Fatal("vendor I missing")
	}
	if vI.AUC < 0.85 {
		t.Fatalf("vendor I AUC = %g", vI.AUC)
	}
	if res.Failures["I"] <= res.Failures["IV"] {
		t.Fatal("vendor I should have the most failures")
	}
}

func TestFig12WalkForward(t *testing.T) {
	res, err := testCtx(t).Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Months) < 4 {
		t.Fatalf("months = %d, want ≥4", len(res.Months))
	}
	if res.DriftStartDay <= res.TrainEndDay {
		t.Fatalf("drift (day %d) should start after training ends (day %d)",
			res.DriftStartDay, res.TrainEndDay)
	}
	// The drift mechanism: the last month's FPR exceeds the first's.
	if res.FPRRise() <= 0 {
		t.Fatalf("FPR did not rise across months: %+v", res.Months)
	}
	// The iteration extension produced a comparable series.
	if len(res.IterMonths) == 0 {
		t.Fatal("monthly-iteration series missing")
	}
	if !strings.Contains(res.String(), "iterFPR") {
		t.Fatal("rendering incomplete")
	}
}

func TestFig17SFSTrajectory(t *testing.T) {
	res, err := testCtx(t).Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no selection steps")
	}
	// AUC is non-decreasing along the greedy trajectory by construction.
	for i := 1; i < len(res.Steps); i++ {
		if res.Steps[i].AUC < res.Steps[i-1].AUC {
			t.Fatalf("AUC decreased at step %d", i)
		}
	}
	// The useless constant (Available Spare Threshold, S_4) must not be
	// among the first picks.
	for i, name := range res.Selected {
		if name == "S_4" && i < 3 {
			t.Fatalf("S_4 selected at position %d", i)
		}
	}
	if !strings.Contains(res.String(), "Added feature") {
		t.Fatal("rendering incomplete")
	}
}

func TestFig18Baselines(t *testing.T) {
	res, err := testCtx(t).Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // MFPA + threshold + 4 learned baselines
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	mfpaRow, ok := res.Row("MFPA (SFWB+RF)")
	if !ok {
		t.Fatal("MFPA row missing")
	}
	thr, ok := res.Row("SMART-threshold")
	if !ok {
		t.Fatal("threshold row missing")
	}
	// The vendor threshold detector is the weak strawman of Section II
	// (3–10% TPR): MFPA must crush it.
	if thr.TPR >= mfpaRow.TPR {
		t.Fatalf("threshold TPR %g ≥ MFPA TPR %g", thr.TPR, mfpaRow.TPR)
	}
	if thr.FPR > 0.02 {
		t.Fatalf("threshold detector FPR %g should be tiny", thr.FPR)
	}
	// MFPA leads every baseline on Youden index.
	for _, row := range res.Rows {
		if row.Name == "MFPA (SFWB+RF)" {
			continue
		}
		if row.TPR-row.FPR > mfpaRow.TPR-mfpaRow.FPR {
			t.Errorf("baseline %s (%.3f/%.3f) beats MFPA (%.3f/%.3f)",
				row.Name, row.TPR, row.FPR, mfpaRow.TPR, mfpaRow.FPR)
		}
	}
}

func TestAblationThetaSweep(t *testing.T) {
	res, err := testCtx(t).AblationTheta()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	paper, ok := res.Row("θ=7")
	if !ok || paper.Note != "paper's choice" {
		t.Fatal("θ=7 row missing or unmarked")
	}
	if paper.TPR < 0.5 {
		t.Fatalf("θ=7 TPR = %g", paper.TPR)
	}
}

func TestAblationSegmentationShowsLeakOptimism(t *testing.T) {
	res, err := testCtx(t).AblationSegmentation()
	if err != nil {
		t.Fatal(err)
	}
	tp, ok1 := res.Row("timepoint-based")
	rnd, ok2 := res.Row("random split")
	if !ok1 || !ok2 {
		t.Fatal("rows missing")
	}
	// Training on shuffled (future-contaminated) data must not look
	// *worse* than the honest split by a wide margin — typically it
	// looks better, which is exactly the paper's warning.
	if rnd.AUC < tp.AUC-0.05 {
		t.Fatalf("random split AUC %g far below timepoint %g", rnd.AUC, tp.AUC)
	}
}

func TestAblationCrossValidationBias(t *testing.T) {
	res, err := testCtx(t).AblationCrossValidation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.IsNaN(row.AUC) || row.AUC < 0.5 {
			t.Errorf("%s AUC = %g", row.Setting, row.AUC)
		}
	}
}

func TestAblationSamplingAndCumulative(t *testing.T) {
	c := testCtx(t)
	sres, err := c.AblationSampling()
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Rows) != 4 {
		t.Fatalf("sampling rows = %d", len(sres.Rows))
	}
	cres, err := c.AblationCumulative()
	if err != nil {
		t.Fatal(err)
	}
	cum, _ := cres.Row("cumulative")
	if cum.TPR < 0.5 {
		t.Fatalf("cumulative TPR = %g", cum.TPR)
	}
	pres, err := c.AblationPositiveWindow()
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Rows) != 3 {
		t.Fatalf("positive-window rows = %d", len(pres.Rows))
	}
	if !strings.Contains(sres.String(), "paper's default") {
		t.Fatal("rendering incomplete")
	}
	if _, ok := sres.Row("nonexistent"); ok {
		t.Fatal("Row(nonexistent) succeeded")
	}
}

func TestContextCaches(t *testing.T) {
	c := testCtx(t)
	p1, err := c.Prepared("I", features.GroupSFWB)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Prepared("I", features.GroupSFWB)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("Prepared not cached")
	}
	s1, _, err := c.Samples("I", features.GroupSFWB)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, _ := c.Samples("I", features.GroupSFWB)
	if &s1[0] != &s2[0] {
		t.Fatal("Samples not cached")
	}
}

func TestGridSearch(t *testing.T) {
	res, err := testCtx(t).GridSearch()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RF) != 6 { // 3 depths × 2 feature settings
		t.Fatalf("RF candidates = %d, want 6", len(res.RF))
	}
	if len(res.GBDT) != 4 { // 2 rates × 2 depths
		t.Fatalf("GBDT candidates = %d, want 4", len(res.GBDT))
	}
	if res.BestRF.Score < 0.5 || res.BestGBDT.Score < 0.5 {
		t.Fatalf("best scores %g / %g are no better than chance", res.BestRF.Score, res.BestGBDT.Score)
	}
	if res.BestRF.Score != res.RF[0].Score {
		t.Fatal("best RF is not the top-sorted candidate")
	}
	if !strings.Contains(res.String(), "RF") {
		t.Fatal("rendering incomplete")
	}
}

func TestImportance(t *testing.T) {
	res, err := testCtx(t).Importance()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "Rank") {
		t.Fatal("rendering incomplete")
	}
	if res.Rank("not-a-feature") != -1 {
		t.Fatal("Rank of unknown feature should be -1")
	}
	if len(res.Names) != 45 {
		t.Fatalf("features ranked = %d, want 45", len(res.Names))
	}
	// The constant Available Spare Threshold (S_4) must be worthless.
	if res.Score("S_4") > 0.01 {
		t.Fatalf("S_4 importance = %g, should be ≈0", res.Score("S_4"))
	}
	// At least one W/B channel belongs in the top ten (Observation #3/#4).
	top := res.Names[:10]
	found := false
	for _, n := range top {
		if len(n) > 1 && (n[0] == 'W' || n[0] == 'B') {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no W/B feature in the top 10: %v", top)
	}
}

func TestFiguresRender(t *testing.T) {
	c := testCtx(t)
	var figurers []Figurer
	if r, err := c.Fig2(); err == nil {
		figurers = append(figurers, r)
	}
	if r, err := c.Fig3(); err == nil {
		figurers = append(figurers, r)
	}
	if r, err := c.Fig4(); err == nil {
		figurers = append(figurers, r)
	}
	if r, err := c.Fig19(); err == nil {
		figurers = append(figurers, r)
	}
	if len(figurers) < 4 {
		t.Fatalf("only %d figurers built", len(figurers))
	}
	seen := make(map[string]bool)
	for _, f := range figurers {
		files, err := f.Figures()
		if err != nil {
			t.Fatalf("%T: %v", f, err)
		}
		for name, data := range files {
			if seen[name] {
				t.Errorf("duplicate figure name %q", name)
			}
			seen[name] = true
			if len(data) < 500 || !strings.Contains(string(data), "<svg") {
				t.Errorf("figure %q looks wrong (%d bytes)", name, len(data))
			}
		}
	}
}

func TestChannels(t *testing.T) {
	res, err := testCtx(t).Channels()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	if !strings.Contains(res.String(), "drop B") {
		t.Fatal("rendering incomplete")
	}
}

func TestSeeds(t *testing.T) {
	res, err := testCtx(t).Seeds()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	for _, vendor := range res.Vendors {
		if len(res.TPRByVendor[vendor]) != 3 {
			t.Fatalf("vendor %s has %d TPRs", vendor, len(res.TPRByVendor[vendor]))
		}
	}
	if !strings.Contains(res.String(), "Range") {
		t.Fatal("rendering incomplete")
	}
}

func TestCostStudy(t *testing.T) {
	res, err := testCtx(t).CostStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The optimum can never cost more than the calibrated default.
		if row.CostPerDrive > row.DefaultCost+1e-9 {
			t.Fatalf("%s: optimal cost %g exceeds default %g",
				row.Regime, row.CostPerDrive, row.DefaultCost)
		}
	}
	// The miss-heavy regime flags at least as eagerly as the
	// alarm-averse one.
	if res.Rows[0].TPR < res.Rows[2].TPR-1e-9 {
		t.Fatalf("miss-heavy TPR %g below alarm-averse %g", res.Rows[0].TPR, res.Rows[2].TPR)
	}
	if !strings.Contains(res.String(), "Regime") {
		t.Fatal("rendering incomplete")
	}
}
