// Package firmware models SSD firmware versions and their effect on
// drive reliability (the paper's Observation #2: earlier firmware
// versions have higher failure rates, and most consumer drives never
// update off the version they shipped with).
//
// Vendors use incompatible naming conventions (strings vs numerics), so
// the modelling layer label-encodes versions per vendor by release
// order; this package owns both the per-vendor registries and the
// encoder.
package firmware

import (
	"fmt"
	"sort"
)

// Version is a vendor-assigned firmware version string, e.g. "EXA7301Q".
type Version string

// Release describes one firmware release of a vendor.
type Release struct {
	Version Version
	// Seq is the release order within the vendor, starting at 1 for the
	// earliest release. The paper labels releases i_F_j by vendor i and
	// sequence j.
	Seq int
	// HazardMultiplier scales the drive's baseline failure hazard while
	// it runs this release. Earlier releases carry larger multipliers
	// (Fig. 3: the earlier the firmware version, the higher the failure
	// rate). 1.0 means no excess hazard.
	HazardMultiplier float64
	// ShipShare is the fraction of the vendor's drives that shipped
	// with (and, per Observation #2, mostly stayed on) this release.
	// Shares of a vendor's releases sum to 1.
	ShipShare float64
}

// Registry holds the ordered firmware releases of a single vendor.
type Registry struct {
	vendor   string
	releases []Release // sorted by Seq
	bySeq    map[int]int
	byVer    map[Version]int
}

// NewRegistry builds a registry for vendor from its releases. Releases
// are re-sorted by Seq. NewRegistry returns an error when releases is
// empty, sequences collide, versions collide, a hazard multiplier is
// not positive, or ship shares do not sum to 1 (±1e-6).
func NewRegistry(vendor string, releases []Release) (*Registry, error) {
	if len(releases) == 0 {
		return nil, fmt.Errorf("firmware: vendor %s: no releases", vendor)
	}
	rs := make([]Release, len(releases))
	copy(rs, releases)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Seq < rs[j].Seq })

	r := &Registry{
		vendor:   vendor,
		releases: rs,
		bySeq:    make(map[int]int, len(rs)),
		byVer:    make(map[Version]int, len(rs)),
	}
	var shareSum float64
	for i, rel := range rs {
		if rel.Seq <= 0 {
			return nil, fmt.Errorf("firmware: vendor %s: release %q has non-positive seq %d", vendor, rel.Version, rel.Seq)
		}
		if _, dup := r.bySeq[rel.Seq]; dup {
			return nil, fmt.Errorf("firmware: vendor %s: duplicate seq %d", vendor, rel.Seq)
		}
		if _, dup := r.byVer[rel.Version]; dup {
			return nil, fmt.Errorf("firmware: vendor %s: duplicate version %q", vendor, rel.Version)
		}
		if rel.HazardMultiplier <= 0 {
			return nil, fmt.Errorf("firmware: vendor %s: release %q has non-positive hazard multiplier %g", vendor, rel.Version, rel.HazardMultiplier)
		}
		if rel.ShipShare < 0 {
			return nil, fmt.Errorf("firmware: vendor %s: release %q has negative ship share %g", vendor, rel.Version, rel.ShipShare)
		}
		r.bySeq[rel.Seq] = i
		r.byVer[rel.Version] = i
		shareSum += rel.ShipShare
	}
	if shareSum < 1-1e-6 || shareSum > 1+1e-6 {
		return nil, fmt.Errorf("firmware: vendor %s: ship shares sum to %g, want 1", vendor, shareSum)
	}
	return r, nil
}

// MustNewRegistry is like NewRegistry but panics on error. It is meant
// for statically-known registries.
func MustNewRegistry(vendor string, releases []Release) *Registry {
	r, err := NewRegistry(vendor, releases)
	if err != nil {
		panic(err)
	}
	return r
}

// Vendor returns the vendor name the registry belongs to.
func (r *Registry) Vendor() string { return r.vendor }

// Releases returns the vendor's releases in sequence order. The slice
// is a copy.
func (r *Registry) Releases() []Release {
	out := make([]Release, len(r.releases))
	copy(out, r.releases)
	return out
}

// Len returns the number of releases.
func (r *Registry) Len() int { return len(r.releases) }

// At returns the i'th release in sequence order. Unlike Releases it
// does not copy the backing slice, so per-drive sampling loops can
// iterate the catalogue without allocating.
func (r *Registry) At(i int) Release { return r.releases[i] }

// BySeq returns the release with sequence seq.
func (r *Registry) BySeq(seq int) (Release, bool) {
	i, ok := r.bySeq[seq]
	if !ok {
		return Release{}, false
	}
	return r.releases[i], true
}

// ByVersion returns the release carrying version v.
func (r *Registry) ByVersion(v Version) (Release, bool) {
	i, ok := r.byVer[v]
	if !ok {
		return Release{}, false
	}
	return r.releases[i], true
}

// Label returns the paper's release label, e.g. "I_F_2" for the second
// release of vendor "I".
func (r *Registry) Label(seq int) string {
	return fmt.Sprintf("%s_F_%d", r.vendor, seq)
}

// Encoder label-encodes firmware version strings into dense numeric
// codes, as the paper's preprocessing step does for the character-typed
// FirmwareVersion column. Codes are assigned by release order when the
// version is known to the registry, so the encoding preserves the
// "earlier firmware" ordering the model exploits; unknown versions get
// fresh codes after the known range in first-seen order.
type Encoder struct {
	reg    *Registry
	extra  map[Version]float64
	nextID float64
}

// NewEncoder returns an encoder backed by registry reg. A nil reg
// yields an encoder that assigns first-seen-order codes starting at 1.
func NewEncoder(reg *Registry) *Encoder {
	e := &Encoder{reg: reg, extra: make(map[Version]float64), nextID: 1}
	if reg != nil {
		e.nextID = float64(reg.Len() + 1)
	}
	return e
}

// Encode returns the numeric code of version v, registering it if
// needed. Codes are stable for the lifetime of the encoder.
func (e *Encoder) Encode(v Version) float64 {
	if e.reg != nil {
		if rel, ok := e.reg.ByVersion(v); ok {
			return float64(rel.Seq)
		}
	}
	if code, ok := e.extra[v]; ok {
		return code
	}
	code := e.nextID
	e.extra[v] = code
	e.nextID++
	return code
}

// KnownCodes returns the number of distinct codes the encoder has
// assigned or can assign from its registry.
func (e *Encoder) KnownCodes() int {
	n := len(e.extra)
	if e.reg != nil {
		n += e.reg.Len()
	}
	return n
}
