package firmware

import (
	"strings"
	"testing"
)

func validReleases() []Release {
	return []Release{
		{Version: "FW1", Seq: 1, HazardMultiplier: 2.0, ShipShare: 0.5},
		{Version: "FW2", Seq: 2, HazardMultiplier: 1.0, ShipShare: 0.3},
		{Version: "FW3", Seq: 3, HazardMultiplier: 0.5, ShipShare: 0.2},
	}
}

func TestNewRegistry(t *testing.T) {
	r, err := NewRegistry("I", validReleases())
	if err != nil {
		t.Fatal(err)
	}
	if r.Vendor() != "I" {
		t.Errorf("Vendor = %q", r.Vendor())
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	rel, ok := r.BySeq(2)
	if !ok || rel.Version != "FW2" {
		t.Errorf("BySeq(2) = %+v, %v", rel, ok)
	}
	rel, ok = r.ByVersion("FW3")
	if !ok || rel.Seq != 3 {
		t.Errorf("ByVersion(FW3) = %+v, %v", rel, ok)
	}
	if _, ok := r.BySeq(9); ok {
		t.Error("BySeq(9) should miss")
	}
	if _, ok := r.ByVersion("nope"); ok {
		t.Error("ByVersion(nope) should miss")
	}
}

func TestRegistrySortsBySeq(t *testing.T) {
	rels := []Release{
		{Version: "B", Seq: 2, HazardMultiplier: 1, ShipShare: 0.5},
		{Version: "A", Seq: 1, HazardMultiplier: 1, ShipShare: 0.5},
	}
	r, err := NewRegistry("V", rels)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Releases()
	if got[0].Version != "A" || got[1].Version != "B" {
		t.Fatalf("releases not sorted: %+v", got)
	}
}

func TestNewRegistryErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func([]Release) []Release
		errPart string
	}{
		{"empty", func(r []Release) []Release { return nil }, "no releases"},
		{"dup seq", func(r []Release) []Release { r[1].Seq = 1; return r }, "duplicate seq"},
		{"dup version", func(r []Release) []Release { r[1].Version = "FW1"; return r }, "duplicate version"},
		{"zero hazard", func(r []Release) []Release { r[0].HazardMultiplier = 0; return r }, "hazard"},
		{"bad shares", func(r []Release) []Release { r[0].ShipShare = 0.9; return r }, "sum"},
		{"negative share", func(r []Release) []Release { r[0].ShipShare = -0.5; return r }, "negative"},
		{"bad seq", func(r []Release) []Release { r[0].Seq = 0; return r }, "seq"},
	}
	for _, tc := range cases {
		_, err := NewRegistry("V", tc.mutate(validReleases()))
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
		}
	}
}

func TestMustNewRegistryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewRegistry should panic on invalid input")
		}
	}()
	MustNewRegistry("V", nil)
}

func TestLabel(t *testing.T) {
	r := MustNewRegistry("I", validReleases())
	if got := r.Label(2); got != "I_F_2" {
		t.Fatalf("Label = %q, want I_F_2", got)
	}
}

func TestEncoderPreservesReleaseOrder(t *testing.T) {
	r := MustNewRegistry("I", validReleases())
	e := NewEncoder(r)
	// Known versions encode to their sequence regardless of call order.
	if got := e.Encode("FW3"); got != 3 {
		t.Errorf("Encode(FW3) = %g, want 3", got)
	}
	if got := e.Encode("FW1"); got != 1 {
		t.Errorf("Encode(FW1) = %g, want 1", got)
	}
}

func TestEncoderUnknownVersions(t *testing.T) {
	r := MustNewRegistry("I", validReleases())
	e := NewEncoder(r)
	a := e.Encode("MYSTERY")
	b := e.Encode("OTHER")
	if a <= 3 || b <= 3 {
		t.Fatalf("unknown versions must encode after the known range: %g, %g", a, b)
	}
	if a == b {
		t.Fatal("distinct unknown versions share a code")
	}
	if again := e.Encode("MYSTERY"); again != a {
		t.Fatalf("encoding not stable: %g then %g", a, again)
	}
	if got := e.KnownCodes(); got != 5 {
		t.Fatalf("KnownCodes = %d, want 5", got)
	}
}

func TestEncoderWithoutRegistry(t *testing.T) {
	e := NewEncoder(nil)
	a := e.Encode("X")
	b := e.Encode("Y")
	if a != 1 || b != 2 {
		t.Fatalf("first-seen codes = %g, %g; want 1, 2", a, b)
	}
	if e.Encode("X") != 1 {
		t.Fatal("code for X changed")
	}
}
