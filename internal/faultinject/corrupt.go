package faultinject

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// CorruptKind enumerates the telemetry corruptions a buggy collector
// produces in the field.
type CorruptKind uint8

const (
	// KindNaNSmart poisons one SMART attribute with NaN.
	KindNaNSmart CorruptKind = iota
	// KindInfSmart poisons one SMART attribute with ±Inf.
	KindInfSmart
	// KindNegativeW flips one Windows-event daily count negative.
	KindNegativeW
	// KindNegativeB flips one stop-code daily count negative.
	KindNegativeB
	// KindDuplicateDay re-emits the record a second time for the same
	// day, as a stuttering uploader would.
	KindDuplicateDay
	// KindOutOfOrderDay rewinds the record's day index, as a clock
	// step or delayed upload would.
	KindOutOfOrderDay
	numCorruptKinds
)

// String names the kind for chaos-run reports.
func (k CorruptKind) String() string {
	switch k {
	case KindNaNSmart:
		return "nan-smart"
	case KindInfSmart:
		return "inf-smart"
	case KindNegativeW:
		return "negative-w"
	case KindNegativeB:
		return "negative-b"
	case KindDuplicateDay:
		return "duplicate-day"
	case KindOutOfOrderDay:
		return "out-of-order-day"
	default:
		return "unknown"
	}
}

// Corruption logs one injected telemetry corruption, keyed by the
// drive and day it hit so chaos assertions can partition the fleet
// into touched and untouched drives.
type Corruption struct {
	SerialNumber string
	Day          int
	Kind         CorruptKind
}

// CorruptorConfig configures a RecordCorruptor.
type CorruptorConfig struct {
	// Seed makes the corruption campaign replayable.
	Seed int64
	// Rate is the per-record corruption probability in [0,1].
	Rate float64
	// Kinds restricts injection to a subset; nil enables every kind.
	Kinds []CorruptKind
}

// RecordCorruptor deterministically mangles a stream of telemetry
// batches. Corrupt never mutates its input: affected records are
// deep-copied before poisoning, so the caller can score the clean and
// corrupted feeds side by side from the same backing data.
type RecordCorruptor struct {
	rng   *rand.Rand
	rate  float64
	kinds []CorruptKind
}

// NewRecordCorruptor builds a seeded corruptor.
func NewRecordCorruptor(cfg CorruptorConfig) *RecordCorruptor {
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		for k := CorruptKind(0); k < numCorruptKinds; k++ {
			kinds = append(kinds, k)
		}
	}
	return &RecordCorruptor{
		rng:   opRNG(cfg.Seed, "records"),
		rate:  cfg.Rate,
		kinds: kinds,
	}
}

// Corrupt applies the campaign to one batch and returns the corrupted
// batch plus the log of what was injected. The input slice and its
// records are never modified; duplicated days lengthen the output.
func (c *RecordCorruptor) Corrupt(recs []dataset.Record) ([]dataset.Record, []Corruption) {
	out := make([]dataset.Record, 0, len(recs))
	var log []Corruption
	for i := range recs {
		// One draw per input record, whatever happens, so the schedule
		// depends only on record position.
		hit := c.rng.Float64() < c.rate
		kindDraw := c.rng.Intn(len(c.kinds))
		if !hit {
			out = append(out, recs[i])
			continue
		}
		kind := c.kinds[kindDraw]
		bad := recs[i].Clone()
		switch kind {
		case KindNaNSmart:
			bad.Smart[c.rng.Intn(len(bad.Smart))] = math.NaN()
		case KindInfSmart:
			bad.Smart[c.rng.Intn(len(bad.Smart))] = math.Inf(1 - 2*c.rng.Intn(2))
		case KindNegativeW:
			if len(bad.WCounts) > 0 {
				bad.WCounts[c.rng.Intn(len(bad.WCounts))] = -1 - float64(c.rng.Intn(100))
			}
		case KindNegativeB:
			if len(bad.BCounts) > 0 {
				bad.BCounts[c.rng.Intn(len(bad.BCounts))] = -1 - float64(c.rng.Intn(100))
			}
		case KindDuplicateDay:
			// The original record stays valid; the duplicate that
			// follows violates day monotonicity.
			out = append(out, recs[i])
		case KindOutOfOrderDay:
			bad.Day -= 1 + c.rng.Intn(3)
		}
		out = append(out, bad)
		log = append(log, Corruption{SerialNumber: recs[i].SerialNumber, Day: recs[i].Day, Kind: kind})
	}
	return out, log
}
