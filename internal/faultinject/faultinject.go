// Package faultinject is the deterministic chaos harness for the
// serving stack. Production consumer telemetry is messy — collectors
// emit NaNs, duplicate days, and negative counters; disks tear writes;
// scoring backends hiccup — so the fault-tolerance layer must be
// exercised against exactly those failures, reproducibly. Every
// injector here is seeded: the same seed over the same call sequence
// injects the same faults, so a chaos run that surfaces a bug is
// replayable bit-for-bit.
//
// Three injector families cover the system's failure surfaces:
//
//   - RecordCorruptor mangles telemetry records (NaN/Inf SMART values,
//     negative event counters, duplicated and out-of-order days) the
//     way a buggy collector would;
//   - IOFaults plugs into atomicio.Hooks to shorten writes, fail
//     renames, and truncate reads around checkpoint persistence;
//   - ScorerFaults supplies the error seams serve.Scorer and
//     fleetops call for transient batch failures, scoring-backend
//     failures, and model-swap failures.
//
// Injected errors carry a Transient method so retry layers can
// classify them without importing this package (errors.As against an
// anonymous interface).
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Error is one injected fault.
type Error struct {
	// Op names the faulted operation (e.g. "observe", "rename").
	Op string
	// Call is the 1-based call count at which the fault fired.
	Call int
	// Retryable marks faults a bounded retry could clear.
	Retryable bool
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s fault (call %d)", e.Op, e.Call)
}

// Transient reports whether a retry could succeed; retry layers detect
// it structurally via errors.As(err, &interface{ Transient() bool }).
func (e *Error) Transient() bool { return e.Retryable }

// IsTransient reports whether err (or anything it wraps) declares
// itself transient.
func IsTransient(err error) bool {
	var te interface{ Transient() bool }
	return errors.As(err, &te) && te.Transient()
}

// opRNG derives an independent deterministic stream per (seed, op), so
// interleaving calls of different ops never perturbs another op's
// schedule.
func opRNG(seed int64, op string) *rand.Rand {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(op); i++ {
		h ^= int64(op[i])
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h))
}

// schedule is one op's deterministic fault stream: the first First
// calls always fault, then each call faults with probability P.
type schedule struct {
	mu    sync.Mutex
	op    string
	rng   *rand.Rand
	first int
	p     float64
	calls int
	fired int
}

func newSchedule(seed int64, op string, first int, p float64) *schedule {
	return &schedule{op: op, rng: opRNG(seed, op), first: first, p: p}
}

// next advances the stream one call and reports whether it faults.
func (s *schedule) next() (call int, fault bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	// Draw unconditionally so the stream's randomness depends only on
	// the call index, not on how many forced-first faults ran.
	draw := s.rng.Float64()
	if s.calls <= s.first || draw < s.p {
		s.fired++
		return s.calls, true
	}
	return s.calls, false
}

// fired returns how many faults the schedule has injected.
func (s *schedule) firedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// ScorerConfig configures the serving-plane fault seams. A zero field
// disables that seam.
type ScorerConfig struct {
	// Seed drives every schedule; the same seed over the same call
	// sequence injects the same faults.
	Seed int64
	// ObserveFirst / ObserveP fault ObserveDay before any state
	// mutation — the transient collector/transport hiccup a bounded
	// retry should clear.
	ObserveFirst int
	ObserveP     float64
	// ScoreFirst / ScoreP fault the batch-scoring backend, forcing the
	// scorer onto its degraded fallback for the day.
	ScoreFirst int
	ScoreP     float64
	// SwapFirst / SwapP fault model swaps (UpdateModel).
	SwapFirst int
	SwapP     float64
}

// ScorerFaults produces the error-returning hooks serve.Options and
// fleetops wire in. Safe for concurrent use.
type ScorerFaults struct {
	observe *schedule
	score   *schedule
	swap    *schedule
}

// NewScorerFaults builds a seeded scorer-fault injector.
func NewScorerFaults(cfg ScorerConfig) *ScorerFaults {
	return &ScorerFaults{
		observe: newSchedule(cfg.Seed, "observe", cfg.ObserveFirst, cfg.ObserveP),
		score:   newSchedule(cfg.Seed, "score", cfg.ScoreFirst, cfg.ScoreP),
		swap:    newSchedule(cfg.Seed, "swap", cfg.SwapFirst, cfg.SwapP),
	}
}

// Observe is the transient pre-batch fault hook (retry-safe).
func (f *ScorerFaults) Observe() error {
	if call, fault := f.observe.next(); fault {
		return &Error{Op: "observe", Call: call, Retryable: true}
	}
	return nil
}

// Score is the scoring-backend fault hook (degradation, not retry).
func (f *ScorerFaults) Score() error {
	if call, fault := f.score.next(); fault {
		return &Error{Op: "score", Call: call}
	}
	return nil
}

// Swap is the model-swap fault hook (transient: the push can be
// retried).
func (f *ScorerFaults) Swap() error {
	if call, fault := f.swap.next(); fault {
		return &Error{Op: "swap", Call: call, Retryable: true}
	}
	return nil
}

// Fired reports how many faults each seam has injected, for chaos-run
// summaries.
func (f *ScorerFaults) Fired() (observe, score, swap int) {
	return f.observe.firedCount(), f.score.firedCount(), f.swap.firedCount()
}
