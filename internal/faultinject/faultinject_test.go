package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/bsod"
	"repro/internal/dataset"
	"repro/internal/firmware"
	"repro/internal/winevent"
)

func testRecords(n int) []dataset.Record {
	recs := make([]dataset.Record, n)
	for i := range recs {
		recs[i] = dataset.Record{
			SerialNumber: fmt.Sprintf("D-%03d", i),
			Vendor:       "I",
			Model:        "M",
			Day:          7,
			Firmware:     firmware.Version("1.0.0"),
			WCounts:      make(winevent.Counts, winevent.Count()),
			BCounts:      make(bsod.Counts, bsod.Count()),
		}
		for j := range recs[i].Smart {
			recs[i].Smart[j] = float64(j)
		}
	}
	return recs
}

// recordsEqual compares records with bitwise float equality, so
// injected NaNs compare equal to themselves (reflect.DeepEqual treats
// NaN ≠ NaN).
func recordsEqual(a, b dataset.Record) bool {
	if a.SerialNumber != b.SerialNumber || a.Vendor != b.Vendor || a.Model != b.Model ||
		a.Day != b.Day || a.Firmware != b.Firmware || a.Interpolated != b.Interpolated {
		return false
	}
	floatsEqual := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	}
	return floatsEqual(a.Smart[:], b.Smart[:]) && floatsEqual(a.WCounts, b.WCounts) && floatsEqual(a.BCounts, b.BCounts)
}

// TestCorruptorDeterminism: same seed, same campaign — different seed,
// (almost surely) different campaign.
func TestCorruptorDeterminism(t *testing.T) {
	recs := testRecords(500)
	run := func(seed int64) ([]dataset.Record, []Corruption) {
		c := NewRecordCorruptor(CorruptorConfig{Seed: seed, Rate: 0.1})
		return c.Corrupt(recs)
	}
	out1, log1 := run(42)
	out2, log2 := run(42)
	if !reflect.DeepEqual(log1, log2) {
		t.Fatal("same seed produced different corruption logs")
	}
	if len(out1) != len(out2) {
		t.Fatal("same seed produced different batch lengths")
	}
	for i := range out1 {
		if !recordsEqual(out1[i], out2[i]) {
			t.Fatalf("record %d differs between same-seed runs", i)
		}
	}
	if len(log1) == 0 {
		t.Fatal("campaign injected nothing at rate 0.1 over 500 records")
	}
	_, log3 := run(43)
	if reflect.DeepEqual(log1, log3) {
		t.Fatal("different seeds produced identical campaigns")
	}
}

// TestCorruptorNeverMutatesInput: the clean batch must stay scoreable
// next to the corrupted one.
func TestCorruptorNeverMutatesInput(t *testing.T) {
	recs := testRecords(200)
	want := make([]dataset.Record, len(recs))
	for i := range recs {
		want[i] = recs[i].Clone()
	}
	c := NewRecordCorruptor(CorruptorConfig{Seed: 7, Rate: 0.5})
	_, log := c.Corrupt(recs)
	if len(log) == 0 {
		t.Fatal("nothing corrupted at rate 0.5")
	}
	for i := range recs {
		if !recordsEqual(recs[i], want[i]) {
			t.Fatalf("input record %d mutated", i)
		}
	}
}

// TestCorruptKindsProduceInvalidRecords: every value-level kind must
// actually trip dataset validation, or the chaos campaign would test
// nothing.
func TestCorruptKindsProduceInvalidRecords(t *testing.T) {
	for _, kind := range []CorruptKind{KindNaNSmart, KindInfSmart, KindNegativeW, KindNegativeB} {
		c := NewRecordCorruptor(CorruptorConfig{Seed: 1, Rate: 1, Kinds: []CorruptKind{kind}})
		out, log := c.Corrupt(testRecords(8))
		if len(log) != 8 {
			t.Fatalf("%v: %d corruptions, want 8", kind, len(log))
		}
		bad := 0
		for i := range out {
			if out[i].Validate() != nil {
				bad++
			}
		}
		if bad != 8 {
			t.Fatalf("%v: %d of 8 corrupted records fail validation", kind, bad)
		}
	}
	// Day-shuffling kinds keep records individually valid; the rolling
	// state is what rejects them.
	c := NewRecordCorruptor(CorruptorConfig{Seed: 1, Rate: 1, Kinds: []CorruptKind{KindDuplicateDay}})
	out, log := c.Corrupt(testRecords(4))
	if len(log) != 4 || len(out) != 8 {
		t.Fatalf("duplicate-day: %d corruptions over %d output records, want 4 over 8", len(log), len(out))
	}
	for i := range out {
		if err := out[i].Validate(); err != nil {
			t.Fatalf("duplicated record %d invalid: %v", i, err)
		}
	}
}

func TestScheduleFirstAndDeterminism(t *testing.T) {
	f := NewScorerFaults(ScorerConfig{Seed: 9, ObserveFirst: 3})
	for i := 0; i < 3; i++ {
		if err := f.Observe(); err == nil {
			t.Fatalf("forced fault %d did not fire", i)
		} else if !IsTransient(err) {
			t.Fatalf("observe fault not transient: %v", err)
		}
	}
	// No probability configured: never fires again.
	for i := 0; i < 100; i++ {
		if err := f.Observe(); err != nil {
			t.Fatalf("unexpected fault after forced window: %v", err)
		}
	}
	observe, score, swap := f.Fired()
	if observe != 3 || score != 0 || swap != 0 {
		t.Fatalf("Fired() = %d,%d,%d want 3,0,0", observe, score, swap)
	}

	// Probabilistic schedules replay exactly under the same seed.
	seqOf := func(seed int64) []bool {
		sf := NewScorerFaults(ScorerConfig{Seed: seed, ScoreP: 0.3})
		seq := make([]bool, 200)
		for i := range seq {
			seq[i] = sf.Score() != nil
		}
		return seq
	}
	if !reflect.DeepEqual(seqOf(5), seqOf(5)) {
		t.Fatal("same seed produced different score-fault schedules")
	}
	if reflect.DeepEqual(seqOf(5), seqOf(6)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScoreFaultNotTransient: scoring faults degrade, they are not
// retried.
func TestScoreFaultNotTransient(t *testing.T) {
	f := NewScorerFaults(ScorerConfig{ScoreFirst: 1})
	if err := f.Score(); err == nil || IsTransient(err) {
		t.Fatalf("score fault should fire non-transient, got %v", err)
	}
	if err := f.Swap(); err != nil {
		t.Fatalf("swap seam leaked a fault: %v", err)
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(fmt.Errorf("wrap: %w", &Error{Op: "observe", Retryable: true})) {
		t.Fatal("wrapped retryable fault not detected")
	}
	if IsTransient(&Error{Op: "score"}) {
		t.Fatal("non-retryable fault reported transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error reported transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil reported transient")
	}
}

// TestIOFaultsHooks drives each seam through atomicio and checks the
// counters line up with observed behaviour.
func TestIOFaultsHooks(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/f"
	if err := atomicio.WriteFileBytes(path, []byte("good")); err != nil {
		t.Fatal(err)
	}

	f := NewIOFaults(IOConfig{Seed: 3, ShortWriteP: 1})
	restore := atomicio.SetHooks(f.Hooks())
	big := make([]byte, 1<<16)
	err := atomicio.WriteFileBytes(path, big)
	restore()
	if err == nil || f.ShortWrites != 1 {
		t.Fatalf("short write did not fire: err=%v count=%d", err, f.ShortWrites)
	}
	if !IsTransient(err) {
		t.Fatalf("short-write error not transient: %v", err)
	}

	f = NewIOFaults(IOConfig{Seed: 3, RenameFailP: 1})
	restore = atomicio.SetHooks(f.Hooks())
	err = atomicio.WriteFileBytes(path, []byte("new"))
	restore()
	if err == nil || f.RenameFails != 1 {
		t.Fatalf("rename fault did not fire: err=%v count=%d", err, f.RenameFails)
	}
	if b, rerr := io.ReadAll(mustOpen(t, path)); rerr != nil || string(b) != "good" {
		t.Fatalf("destination disturbed: %q %v", b, rerr)
	}

	f = NewIOFaults(IOConfig{Seed: 3, TruncateReadP: 1})
	restore = atomicio.SetHooks(f.Hooks())
	rc, err := atomicio.Open(path)
	if err != nil {
		restore()
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	restore()
	if f.TruncatedReads != 1 {
		t.Fatalf("truncated-read count %d, want 1", f.TruncatedReads)
	}
	if len(got) > len("good") {
		t.Fatalf("truncating reader returned %d bytes", len(got))
	}
}

func mustOpen(t *testing.T, path string) io.ReadCloser {
	t.Helper()
	rc, err := atomicio.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return rc
}
