package faultinject

import (
	"io"
	"math/rand"
	"sync"

	"repro/internal/atomicio"
)

// IOConfig configures checkpoint-persistence fault injection. A zero
// probability disables that fault.
type IOConfig struct {
	// Seed makes the fault schedule replayable.
	Seed int64
	// ShortWriteP is the per-WriteFile probability that the staged
	// write is cut off partway (simulating crash / disk full).
	ShortWriteP float64
	// RenameFailP is the per-WriteFile probability that the publishing
	// rename fails (simulating a crash between stage and publish).
	RenameFailP float64
	// TruncateReadP is the per-Open probability that the stream is
	// truncated partway (simulating a torn download or bad sector).
	TruncateReadP float64
}

// IOFaults derives atomicio.Hooks from a seeded schedule. Install with
// atomicio.SetHooks(f.Hooks()) and restore afterwards.
type IOFaults struct {
	mu  sync.Mutex
	rng *rand.Rand
	cfg IOConfig

	// ShortWrites, RenameFails, TruncatedReads count injected faults.
	ShortWrites, RenameFails, TruncatedReads int
}

// NewIOFaults builds a seeded I/O fault injector.
func NewIOFaults(cfg IOConfig) *IOFaults {
	return &IOFaults{rng: opRNG(cfg.Seed, "io"), cfg: cfg}
}

// Hooks returns the atomicio fault seam backed by this injector.
func (f *IOFaults) Hooks() *atomicio.Hooks {
	return &atomicio.Hooks{
		WrapWriter:   f.wrapWriter,
		BeforeRename: f.beforeRename,
		WrapReader:   f.wrapReader,
	}
}

func (f *IOFaults) wrapWriter(w io.Writer) io.Writer {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng.Float64() >= f.cfg.ShortWriteP {
		return w
	}
	f.ShortWrites++
	// Fail after a seeded number of bytes, so some payloads die on the
	// first flush and some nearly complete.
	return &shortWriter{w: w, remaining: 1 + f.rng.Intn(4096)}
}

func (f *IOFaults) beforeRename(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng.Float64() >= f.cfg.RenameFailP {
		return nil
	}
	f.RenameFails++
	return &Error{Op: "rename", Call: f.RenameFails, Retryable: true}
}

func (f *IOFaults) wrapReader(r io.Reader) io.Reader {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng.Float64() >= f.cfg.TruncateReadP {
		return r
	}
	f.TruncatedReads++
	return io.LimitReader(r, int64(f.rng.Intn(4096)))
}

// shortWriter forwards up to remaining bytes, then fails — the staged
// file ends mid-payload exactly as a crash would leave it.
type shortWriter struct {
	w         io.Writer
	remaining int
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if s.remaining <= 0 {
		return 0, &Error{Op: "write", Retryable: true}
	}
	n := len(p)
	if n > s.remaining {
		n = s.remaining
	}
	n, err := s.w.Write(p[:n])
	s.remaining -= n
	if err != nil {
		return n, err
	}
	if n < len(p) {
		return n, &Error{Op: "write", Retryable: true}
	}
	return n, nil
}
