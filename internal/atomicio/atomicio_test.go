package atomicio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func listTemps(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	want := []byte("first version\n")
	if err := WriteFileBytes(path, want); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, path); !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	// Overwrite replaces the whole file, never appends.
	want2 := []byte("v2")
	if err := WriteFileBytes(path, want2); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, path); !bytes.Equal(got, want2) {
		t.Fatalf("read back %q, want %q", got, want2)
	}
	if tmps := listTemps(t, dir); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

// TestWriteFileCrashMidWrite: a write that dies partway must leave the
// previous file byte-identical and clean up its staging temp.
func TestWriteFileCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.csv")
	prev := []byte("the good version")
	if err := WriteFileBytes(path, prev); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("simulated crash")
	err := WriteFile(path, func(w io.Writer) error {
		if _, werr := w.Write([]byte("half of the new ver")); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if got := readAll(t, path); !bytes.Equal(got, prev) {
		t.Fatalf("destination corrupted: %q, want %q", got, prev)
	}
	if tmps := listTemps(t, dir); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

// TestWriteFileShortWriteHook: the WrapWriter fault seam cuts the
// payload off and the destination survives.
func TestWriteFileShortWriteHook(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	prev := []byte("previous model")
	if err := WriteFileBytes(path, prev); err != nil {
		t.Fatal(err)
	}

	restore := SetHooks(&Hooks{WrapWriter: func(w io.Writer) io.Writer {
		return &failAfter{w: w, n: 5}
	}})
	defer restore()
	err := WriteFileBytes(path, bytes.Repeat([]byte("x"), 1<<16))
	if err == nil {
		t.Fatal("short write not surfaced")
	}
	if got := readAll(t, path); !bytes.Equal(got, prev) {
		t.Fatalf("destination corrupted: %q", got)
	}
	if tmps := listTemps(t, dir); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

// TestWriteFileRenameFailure: a fault between stage and publish leaves
// the destination untouched.
func TestWriteFileRenameFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "agent.state")
	prev := []byte("prev")
	if err := WriteFileBytes(path, prev); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("rename blocked")
	restore := SetHooks(&Hooks{BeforeRename: func(string) error { return boom }})
	defer restore()
	if err := WriteFileBytes(path, []byte("next")); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	restore()
	if got := readAll(t, path); !bytes.Equal(got, prev) {
		t.Fatalf("destination corrupted: %q", got)
	}
	if tmps := listTemps(t, dir); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

func TestWriteFileNewFileNoDirectory(t *testing.T) {
	if err := WriteFileBytes(filepath.Join(t.TempDir(), "missing", "f"), []byte("x")); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}

// TestOpenTruncateHook: the WrapReader seam truncates the stream while
// Close still releases the real file.
func TestOpenTruncateHook(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data")
	payload := bytes.Repeat([]byte("abcd"), 100)
	if err := WriteFileBytes(path, payload); err != nil {
		t.Fatal(err)
	}
	restore := SetHooks(&Hooks{WrapReader: func(r io.Reader) io.Reader {
		return io.LimitReader(r, 7)
	}})
	defer restore()
	rc, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("read %d bytes through truncating hook, want 7", len(got))
	}
	restore()
	rc, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("unhooked read wrong: %d bytes, err %v", len(got), err)
	}
}

// TestSetHooksRestores pins the stacking contract: restore reinstates
// whatever was installed before.
func TestSetHooksRestores(t *testing.T) {
	marker := errors.New("outer")
	r1 := SetHooks(&Hooks{BeforeRename: func(string) error { return marker }})
	r2 := SetHooks(nil)
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFileBytes(path, []byte("a")); err != nil {
		t.Fatalf("inner nil hooks should pass: %v", err)
	}
	r2()
	if err := WriteFileBytes(path, []byte("b")); !errors.Is(err, marker) {
		t.Fatalf("outer hooks not restored: %v", err)
	}
	r1()
	if err := WriteFileBytes(path, []byte("c")); err != nil {
		t.Fatalf("clean state not restored: %v", err)
	}
}

// failAfter forwards n bytes then errors.
type failAfter struct {
	w io.Writer
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("failAfter: budget exhausted")
	}
	n := len(p)
	if n > f.n {
		n = f.n
	}
	n, err := f.w.Write(p[:n])
	f.n -= n
	if err == nil && n < len(p) {
		err = fmt.Errorf("failAfter: budget exhausted")
	}
	return n, err
}
