// Package atomicio provides crash-safe file persistence for the
// checkpoints the serving stack writes continuously: telemetry
// snapshots, model envelopes, and agent state. A bare os.Create
// truncates in place, so a crash mid-write leaves a torn file the
// readers can only report as corruption; WriteFile instead stages the
// bytes in a temporary file in the same directory, fsyncs, and renames
// over the destination, so the path always holds either the previous
// complete file or the new complete file — never a prefix of one.
//
// The package also carries the I/O fault seam for chaos testing:
// Hooks installed via SetHooks can shorten writes, fail renames, and
// truncate reads, letting the fault-injection harness exercise every
// adopter's crash-recovery path deterministically.
package atomicio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Hooks intercepts the primitive I/O steps of WriteFile and Open. All
// fields are optional. Hooks exist for fault injection and tests; the
// nil default is the production fast path.
type Hooks struct {
	// WrapWriter wraps the staged file before any payload bytes are
	// written; returning a writer that errors mid-stream simulates a
	// crash or disk-full during the write.
	WrapWriter func(w io.Writer) io.Writer
	// BeforeRename runs after the temp file is synced and closed, just
	// before the rename; returning an error simulates a crash between
	// write and publish (the destination must stay intact).
	BeforeRename func(path string) error
	// WrapReader wraps files opened through Open; returning a reader
	// that truncates simulates torn reads and partial downloads.
	WrapReader func(r io.Reader) io.Reader
}

// hooks is the installed fault seam; nil when injection is off.
var hooks atomic.Pointer[Hooks]

// SetHooks installs h as the package's I/O fault seam and returns a
// restore function that reinstates the previous hooks. Passing nil
// disables injection. Intended for tests and chaos runs only; callers
// must not leave hooks installed across unrelated tests.
func SetHooks(h *Hooks) (restore func()) {
	prev := hooks.Swap(h)
	return func() { hooks.Store(prev) }
}

// WriteFile atomically replaces path with the bytes write produces:
// the payload is staged in a same-directory temp file through a
// buffered writer, flushed, fsynced, closed, and renamed over path,
// then the directory entry is fsynced. On any error the temp file is
// removed and path is left exactly as it was.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	h := hooks.Load()
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: stage %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	var w io.Writer = tmp
	if h != nil && h.WrapWriter != nil {
		w = h.WrapWriter(w)
	}
	bw := bufio.NewWriter(w)
	if err = write(bw); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if h != nil && h.BeforeRename != nil {
		if err = h.BeforeRename(path); err != nil {
			return fmt.Errorf("atomicio: publish %s: %w", path, err)
		}
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicio: publish %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// WriteFileBytes atomically replaces path with data.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs the directory so the rename itself is durable.
// Best-effort: some filesystems reject directory fsync, and the rename
// has already happened atomically, so failures are ignored.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Open opens path for reading, routing the stream through the
// installed WrapReader hook so chaos runs can truncate or corrupt
// reads. Close always closes the underlying file.
func Open(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	h := hooks.Load()
	if h == nil || h.WrapReader == nil {
		return f, nil
	}
	return &hookedReader{r: h.WrapReader(f), f: f}, nil
}

// hookedReader reads through a hook-wrapped stream but closes the real
// file.
type hookedReader struct {
	r io.Reader
	f *os.File
}

func (h *hookedReader) Read(p []byte) (int, error) { return h.r.Read(p) }
func (h *hookedReader) Close() error               { return h.f.Close() }
