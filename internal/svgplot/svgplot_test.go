package svgplot

import (
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"
)

// wellFormed parses the output as XML, the strongest structural check
// available without a renderer.
func wellFormed(t *testing.T, data []byte) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, data)
		}
	}
}

func TestLineChartRender(t *testing.T) {
	c := &LineChart{
		Title:  "Fig 19: TPR vs lookahead",
		XLabel: "N (days)",
		YLabel: "TPR",
		Series: []Series{
			{Name: "TPR", X: []float64{1, 5, 9, 13}, Y: []float64{0.98, 0.95, 0.82, 0.66}},
			{Name: "baseline", X: []float64{1, 5, 9, 13}, Y: []float64{0.1, 0.1, 0.1, 0.1}},
		},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, out)
	s := string(out)
	for _, want := range []string{"Fig 19", "TPR", "N (days)", "<path", "<circle"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestLineChartErrors(t *testing.T) {
	if _, err := (&LineChart{Title: "x"}).Render(); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := &LineChart{Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := bad.Render(); err == nil {
		t.Fatal("ragged series accepted")
	}
	empty := &LineChart{Series: []Series{{Name: "a"}}}
	if _, err := empty.Render(); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestLineChartDegenerateRanges(t *testing.T) {
	// Constant x and y must not divide by zero.
	c := &LineChart{
		Title:  "flat",
		Series: []Series{{Name: "s", X: []float64{2, 2}, Y: []float64{5, 5}}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, out)
	if strings.Contains(string(out), "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestBarChartRender(t *testing.T) {
	c := &BarChart{
		Title:  "Fig 9: feature groups",
		XLabel: "Group",
		YLabel: "TPR",
		Labels: []string{"SFWB", "SF", "S"},
		Groups: []Series{
			{Name: "TPR", Y: []float64{0.98, 0.90, 0.89}},
			{Name: "FPR", Y: []float64{0.006, 0.02, 0.02}},
		},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, out)
	s := string(out)
	if strings.Count(s, "<rect") < 6 { // frame + background + 6 bars + legends
		t.Fatalf("too few rects:\n%s", s)
	}
	if !strings.Contains(s, "SFWB") {
		t.Fatal("category labels missing")
	}
}

func TestBarChartErrors(t *testing.T) {
	if _, err := (&BarChart{}).Render(); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := &BarChart{Labels: []string{"a"}, Groups: []Series{{Y: []float64{1, 2}}}}
	if _, err := bad.Render(); err == nil {
		t.Fatal("mismatched group accepted")
	}
	neg := &BarChart{Labels: []string{"a"}, Groups: []Series{{Y: []float64{-1}}}}
	if _, err := neg.Render(); err == nil {
		t.Fatal("negative bar accepted")
	}
}

func TestEscape(t *testing.T) {
	c := &LineChart{
		Title:  `<&"> injection`,
		Series: []Series{{Name: "a<b", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, out)
	if strings.Contains(string(out), "<&") {
		t.Fatal("unescaped markup")
	}
}

func TestLineChartAlwaysWellFormedProperty(t *testing.T) {
	f := func(seedVals []float64, name string) bool {
		if len(seedVals) == 0 {
			return true
		}
		if len(seedVals) > 50 {
			seedVals = seedVals[:50]
		}
		xs := make([]float64, len(seedVals))
		ys := make([]float64, len(seedVals))
		for i, v := range seedVals {
			// Sanitise NaN/Inf: the caller contract is finite data.
			if v != v || v > 1e12 || v < -1e12 {
				v = 0
			}
			xs[i] = float64(i)
			ys[i] = v
		}
		c := &LineChart{Title: name, Series: []Series{{Name: name, X: xs, Y: ys}}}
		out, err := c.Render()
		if err != nil {
			return false
		}
		return !strings.Contains(string(out), "NaN")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
