// Package svgplot renders the repository's experiment results as
// self-contained SVG figures using only the standard library, so
// `mfpareport -svg` can regenerate the paper's figures as images, not
// just text tables. It implements exactly the two chart forms the
// paper's evaluation uses: line charts (trajectories, monthly series,
// lookahead decay) and bar charts (histograms, per-group/vendor rates).
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Canvas geometry (pixels).
const (
	width   = 640
	height  = 400
	marginL = 70
	marginR = 30
	marginT = 50
	marginB = 60
)

// palette cycles across series.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#17becf"}

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart describes a multi-series line figure.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMin/YMax fix the value axis; both zero selects auto-scaling.
	YMin, YMax float64
}

// Render produces the SVG document.
func (c *LineChart) Render() ([]byte, error) {
	if len(c.Series) == 0 {
		return nil, fmt.Errorf("svgplot: line chart %q has no series", c.Title)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return nil, fmt.Errorf("svgplot: series %q has %d x but %d y", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return nil, fmt.Errorf("svgplot: series %q is empty", s.Name)
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	var b strings.Builder
	writeHeader(&b, c.Title, c.XLabel, c.YLabel)
	writeAxes(&b, xmin, xmax, ymin, ymax, false, nil)

	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var path strings.Builder
		for i := range s.X {
			px, py := project(s.X[i], s.Y[i], xmin, xmax, ymin, ymax)
			if i == 0 {
				fmt.Fprintf(&path, "M%.1f,%.1f", px, py)
			} else {
				fmt.Fprintf(&path, " L%.1f,%.1f", px, py)
			}
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", path.String(), color)
		for i := range s.X {
			px, py := project(s.X[i], s.Y[i], xmin, xmax, ymin, ymax)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px, py, color)
		}
		// Legend row.
		lx, ly := float64(marginL+10), float64(marginT+14*(si+1))
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", lx, ly-9, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n", lx+14, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return []byte(b.String()), nil
}

// BarChart describes a categorical bar figure (optionally grouped).
type BarChart struct {
	Title  string
	XLabel string
	YLabel string
	// Labels name the categories along x.
	Labels []string
	// Groups are parallel value sets, one bar per category per group.
	Groups []Series // only Name and Y are used; len(Y) == len(Labels)
}

// Render produces the SVG document.
func (c *BarChart) Render() ([]byte, error) {
	if len(c.Labels) == 0 || len(c.Groups) == 0 {
		return nil, fmt.Errorf("svgplot: bar chart %q is empty", c.Title)
	}
	ymax := math.Inf(-1)
	for _, g := range c.Groups {
		if len(g.Y) != len(c.Labels) {
			return nil, fmt.Errorf("svgplot: group %q has %d values for %d labels", g.Name, len(g.Y), len(c.Labels))
		}
		for _, v := range g.Y {
			if v < 0 {
				return nil, fmt.Errorf("svgplot: bar chart %q has negative value", c.Title)
			}
			ymax = math.Max(ymax, v)
		}
	}
	if ymax <= 0 {
		ymax = 1
	}

	var b strings.Builder
	writeHeader(&b, c.Title, c.XLabel, c.YLabel)
	writeAxes(&b, 0, float64(len(c.Labels)), 0, ymax, true, c.Labels)

	plotW := float64(width - marginL - marginR)
	slot := plotW / float64(len(c.Labels))
	barW := slot * 0.7 / float64(len(c.Groups))
	for gi, g := range c.Groups {
		color := palette[gi%len(palette)]
		for i, v := range g.Y {
			x := float64(marginL) + slot*float64(i) + slot*0.15 + barW*float64(gi)
			_, top := project(0, v, 0, 1, 0, ymax)
			h := float64(height-marginB) - top
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, top, barW, h, color)
		}
		if len(c.Groups) > 1 {
			lx, ly := float64(marginL+10), float64(marginT+14*(gi+1))
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", lx, ly-9, color)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n", lx+14, ly, escape(g.Name))
		}
	}
	b.WriteString("</svg>\n")
	return []byte(b.String()), nil
}

// project maps a data point into pixel coordinates.
func project(x, y, xmin, xmax, ymin, ymax float64) (px, py float64) {
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px = float64(marginL) + (x-xmin)/(xmax-xmin)*plotW
	py = float64(height-marginB) - (y-ymin)/(ymax-ymin)*plotH
	return px, py
}

func writeHeader(b *strings.Builder, title, xlabel, ylabel string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="24" font-size="15" text-anchor="middle" font-weight="bold">%s</text>`+"\n", width/2, escape(title))
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n", width/2, height-14, escape(xlabel))
	fmt.Fprintf(b, `<text x="18" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`+"\n", height/2, height/2, escape(ylabel))
}

// writeAxes draws the frame, y ticks, and either numeric x ticks or
// category labels.
func writeAxes(b *strings.Builder, xmin, xmax, ymin, ymax float64, categorical bool, labels []string) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, width-marginL-marginR, height-marginT-marginB)
	// Five y ticks.
	for i := 0; i <= 4; i++ {
		v := ymin + (ymax-ymin)*float64(i)/4
		_, py := project(xmin, v, xmin, xmax, ymin, ymax)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py, width-marginR, py)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-6, py+3, formatTick(v))
	}
	if categorical {
		slot := float64(width-marginL-marginR) / float64(len(labels))
		for i, lab := range labels {
			x := float64(marginL) + slot*(float64(i)+0.5)
			fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
				x, height-marginB+16, escape(lab))
		}
		return
	}
	for i := 0; i <= 4; i++ {
		v := xmin + (xmax-xmin)*float64(i)/4
		px, _ := project(v, ymin, xmin, xmax, ymin, ymax)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px, height-marginB+16, formatTick(v))
	}
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
