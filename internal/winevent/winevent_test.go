package winevent

import "testing"

func TestCatalogueMatchesTableIII(t *testing.T) {
	want := []ID{7, 11, 15, 49, 51, 52, 154, 157, 161}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("catalogue has %d events, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("catalogue[%d].ID = %d, want %d", i, all[i].ID, id)
		}
		if all[i].Description == "" {
			t.Errorf("event %d has empty description", id)
		}
	}
}

func TestSelectedCountMatchesTableV(t *testing.T) {
	// Table V assigns 5 WindowsEvent features to the W column.
	if got := SelectedCount(); got != 5 {
		t.Fatalf("SelectedCount() = %d, want 5", got)
	}
	if got := len(Selected()); got != 5 {
		t.Fatalf("len(Selected()) = %d, want 5", got)
	}
	for _, info := range Selected() {
		if !info.Selected {
			t.Errorf("Selected() returned non-selected event %v", info.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	info, ok := Lookup(PagingError)
	if !ok {
		t.Fatal("Lookup(W_51) failed")
	}
	if info.ID != PagingError {
		t.Fatalf("Lookup returned ID %d", info.ID)
	}
	if _, ok := Lookup(ID(9999)); ok {
		t.Fatal("Lookup of unknown ID should fail")
	}
}

func TestIndexDenseAndStable(t *testing.T) {
	seen := make(map[int]bool)
	for _, info := range All() {
		idx := info.ID.Index()
		if idx < 0 || idx >= Count() {
			t.Fatalf("index %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
}

func TestIndexPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index of unknown ID should panic")
		}
	}()
	ID(9999).Index()
}

func TestLabel(t *testing.T) {
	if got := FileSystemIOError.Label(); got != "W_161" {
		t.Fatalf("Label = %q, want W_161", got)
	}
	if got := FileSystemIOError.String(); got != "W_161" {
		t.Fatalf("String = %q, want W_161", got)
	}
}

func TestCounts(t *testing.T) {
	c := NewCounts()
	if len(c) != Count() {
		t.Fatalf("NewCounts len = %d, want %d", len(c), Count())
	}
	c.Add(BadBlock, 2)
	c.Add(PagingError, 3)
	c.Add(BadBlock, 1)
	if got := c.Get(BadBlock); got != 3 {
		t.Errorf("Get(W_7) = %g, want 3", got)
	}
	if got := c.Total(); got != 6 {
		t.Errorf("Total = %g, want 6", got)
	}
}
