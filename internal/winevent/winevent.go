// Package winevent catalogues the Windows system event IDs that the
// paper's Observation #3 identifies as early signals of SSD failure
// (Table III). In a consumer storage system these are harvested from the
// Windows Event Viewer; here they double as the emission channels of the
// fleet simulator.
package winevent

import "fmt"

// ID is a Windows event identifier (the numeric ID shown by Event Viewer).
type ID int

// Windows events tracked by the paper (Table III).
const (
	BadBlock          ID = 7   // W_7: the device has a bad block
	ControllerError   ID = 11  // W_11: the driver detected a controller error
	DiskNotReady      ID = 15  // W_15: the device is not ready for access yet
	CrashDumpPageFile ID = 49  // W_49: configuring the page file for crash dump failed
	PagingError       ID = 51  // W_51: an error was detected during a paging operation
	PredictedFailure  ID = 52  // W_52: the driver detected that the device predicted failure
	IOHardwareError   ID = 154 // W_154: an IO operation failed due to a hardware error
	SurpriseRemoval   ID = 157 // W_157: disk has been surprise-removed
	FileSystemIOError ID = 161 // W_161: file-system error during IO on database
)

// Info describes one catalogued Windows event.
type Info struct {
	ID          ID
	Description string
	// Selected reports whether the event is one of the five events the
	// paper's feature groups include (Table V uses 5 WindowsEvent
	// features; feature selection highlights W_11, W_49, W_51, W_161).
	Selected bool
}

var catalogue = []Info{
	{BadBlock, "The device has a bad block", false},
	{ControllerError, "The driver detected a controller error on Disk_i", true},
	{DiskNotReady, "The Disk_i is not ready for access yet", false},
	{CrashDumpPageFile, "Configuring the page file for crash dump fails", true},
	{PagingError, "An error is detected on device during a paging operation", true},
	{PredictedFailure, "The driver detects that device has predicted it will fail", true},
	{IOHardwareError, "The IO operation at logical block address fails due to a hardware error", false},
	{SurpriseRemoval, "Disk has been surprisingly removed", false},
	{FileSystemIOError, "File System error during IO on database", true},
}

var indexByID = func() map[ID]int {
	m := make(map[ID]int, len(catalogue))
	for i, info := range catalogue {
		m[info.ID] = i
	}
	return m
}()

// Count is the number of catalogued Windows events (all of Table III).
func Count() int { return len(catalogue) }

// SelectedCount is the number of events included in the paper's feature
// groups (the "5" in Table V's WindowsEvent column).
func SelectedCount() int {
	n := 0
	for _, info := range catalogue {
		if info.Selected {
			n++
		}
	}
	return n
}

// All returns the catalogue in table order. The slice is a copy.
func All() []Info {
	out := make([]Info, len(catalogue))
	copy(out, catalogue)
	return out
}

// Selected returns the events included in the paper's feature groups,
// in table order.
func Selected() []Info {
	out := make([]Info, 0, SelectedCount())
	for _, info := range catalogue {
		if info.Selected {
			out = append(out, info)
		}
	}
	return out
}

// Lookup returns the description of id and whether id is catalogued.
func Lookup(id ID) (Info, bool) {
	i, ok := indexByID[id]
	if !ok {
		return Info{}, false
	}
	return catalogue[i], true
}

// Index returns the dense 0-based position of id within the catalogue,
// used to index per-event count vectors. It panics on unknown IDs:
// event IDs are program constants.
func (id ID) Index() int {
	i, ok := indexByID[id]
	if !ok {
		panic(fmt.Sprintf("winevent: unknown event ID %d", int(id)))
	}
	return i
}

// Valid reports whether id is catalogued.
func (id ID) Valid() bool {
	_, ok := indexByID[id]
	return ok
}

// Label returns the paper's compact label, e.g. "W_161".
func (id ID) Label() string { return fmt.Sprintf("W_%d", int(id)) }

// String returns the label for use in logs and reports.
func (id ID) String() string { return id.Label() }

// Counts is a dense per-day count vector over the full catalogue,
// indexed by ID.Index().
type Counts []float64

// NewCounts returns a zeroed count vector sized for the catalogue.
func NewCounts() Counts { return make(Counts, len(catalogue)) }

// Add increments the count of event id by n.
func (c Counts) Add(id ID, n float64) { c[id.Index()] += n }

// Get returns the count of event id.
func (c Counts) Get(id ID) float64 { return c[id.Index()] }

// Total returns the sum over all events.
func (c Counts) Total() float64 {
	var t float64
	for _, v := range c {
		t += v
	}
	return t
}
