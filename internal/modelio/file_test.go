package modelio

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/core"
)

// TestSaveFileLoadFileRoundTrip: the atomic file path preserves the
// envelope exactly — the file bytes match Save's stream bytes and the
// reloaded model scores identically.
func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	models := trainedModels(t)
	m := models[core.AlgoRF]
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	want, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Save appends the encoder's trailing newline.
	if string(got) != string(want)+"\n" {
		t.Fatal("SaveFile bytes differ from Marshal bytes")
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, m.Width)
	for i := 0; i < 50; i++ {
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if a, b := m.Classifier.PredictProba(x), loaded.Classifier.PredictProba(x); a != b {
			t.Fatalf("sample %d: reloaded model scores %v, original %v", i, b, a)
		}
	}
}

// TestSaveFileCrashKeepsOldModel: a save that dies before publish
// leaves the previously deployed envelope loadable.
func TestSaveFileCrashKeepsOldModel(t *testing.T) {
	models := trainedModels(t)
	m := models[core.AlgoRF]
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	restore := atomicio.SetHooks(&atomicio.Hooks{
		BeforeRename: func(string) error { return os.ErrPermission },
	})
	err = SaveFile(path, models[core.AlgoGBDT])
	restore()
	if err == nil {
		t.Fatal("blocked publish not surfaced")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("failed save disturbed the deployed envelope")
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("deployed envelope unloadable after failed save: %v", err)
	}
}
