package modelio

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/simfleet"
)

// trainedModels trains one small model per algorithm on a shared tiny
// fleet, plus the samples to verify score equality on.
func trainedModels(t *testing.T) map[core.Algorithm]*core.Model {
	t.Helper()
	cfg := simfleet.TinyConfig()
	cfg.FailureScale = 0.04
	fleet, err := simfleet.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[core.Algorithm]*core.Model)
	for _, algo := range core.Algorithms() {
		pc := core.DefaultConfig("I")
		pc.Algorithm = algo
		if algo == core.AlgoCNNLSTM {
			pc.SeqLen = 3
		}
		m, _, err := core.TrainOnFleet(fleet.Data, fleet.Tickets, pc)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		out[algo] = m
	}
	return out
}

func TestRoundTripAllAlgorithms(t *testing.T) {
	models := trainedModels(t)
	for algo, m := range models {
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", algo, err)
		}
		restored, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", algo, err)
		}
		if restored.Threshold != m.Threshold {
			t.Errorf("%s: threshold %g != %g", algo, restored.Threshold, m.Threshold)
		}
		if restored.Config.Algorithm != algo {
			t.Errorf("%s: algorithm %q after round trip", algo, restored.Config.Algorithm)
		}
		if restored.Config.Group != m.Config.Group {
			t.Errorf("%s: group changed", algo)
		}
		// Scores must match bit-for-bit on arbitrary inputs.
		width := m.Width
		if algo == core.AlgoCNNLSTM {
			width = m.Width * m.Config.SeqLen
		}
		for trial := 0; trial < 10; trial++ {
			x := make([]float64, width)
			for i := range x {
				x[i] = float64((trial+1)*(i+3)%97) * 1.5
			}
			if got, want := restored.Predict(x), m.Predict(x); got != want {
				t.Fatalf("%s: prediction drift after round trip: %g vs %g", algo, got, want)
			}
		}
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	models := trainedModels(t)
	m := models[core.AlgoRF]
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.Width)
	if restored.Predict(x) != m.Predict(x) {
		t.Fatal("prediction drift")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Unmarshal([]byte(`{"version":99,"algorithm":"RF","group":"SFWB","threshold":0.5,"payload":{}}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := Unmarshal([]byte(`{"version":1,"algorithm":"RF","group":"NOPE","threshold":0.5,"payload":{}}`)); err == nil {
		t.Fatal("unknown group accepted")
	}
	if _, err := Unmarshal([]byte(`{"version":1,"algorithm":"RF","group":"SFWB","threshold":2,"payload":{}}`)); err == nil {
		t.Fatal("out-of-range threshold accepted")
	}
	if _, err := Unmarshal([]byte(`{"version":1,"algorithm":"XGB","group":"SFWB","threshold":0.5,"payload":{}}`)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Unmarshal([]byte(`{"version":1,"algorithm":"RF","group":"SFWB","threshold":0.5,"payload":{"Trees":[]}}`)); err == nil {
		t.Fatal("empty forest accepted")
	}
}

// TestBatchPredictionsSurviveRoundTrip asserts the flattened batch
// inference form is rebuilt after export/import: a restored RF or GBDT
// model still exposes ml.BatchClassifier and its batch scores are
// bit-exact against both the original model and the restored per-row
// path.
func TestBatchPredictionsSurviveRoundTrip(t *testing.T) {
	models := trainedModels(t)
	for _, algo := range []core.Algorithm{core.AlgoRF, core.AlgoGBDT} {
		m := models[algo]
		data, err := Marshal(m)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		restored, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		rb, ok := restored.Classifier.(ml.BatchClassifier)
		if !ok {
			t.Fatalf("%s: restored model lost the batch fast path", algo)
		}
		xs := make([][]float64, 600) // straddles the kernel's block size
		for r := range xs {
			x := make([]float64, m.Width)
			for i := range x {
				x[i] = float64((r+1)*(i+3)%97) * 1.5
			}
			xs[r] = x
		}
		got := make([]float64, len(xs))
		rb.PredictProbaBatch(xs, got, 0)
		for i, x := range xs {
			if want := m.Predict(x); got[i] != want {
				t.Fatalf("%s: row %d: restored batch %v != original %v", algo, i, got[i], want)
			}
			if want := restored.Predict(x); got[i] != want {
				t.Fatalf("%s: row %d: restored batch %v != restored per-row %v", algo, i, got[i], want)
			}
		}
	}
}

// TestSaveBytesMatchMarshal pins the two write paths together: Save's
// buffered single-pass encoding must produce exactly Marshal's bytes
// plus the encoder's trailing newline, and the inline-payload envelope
// must match what decoding and re-encoding the RawMessage form yields.
func TestSaveBytesMatchMarshal(t *testing.T) {
	models := trainedModels(t)
	for algo, m := range models {
		data, err := Marshal(m)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", algo, err)
		}
		if want := string(data) + "\n"; buf.String() != want {
			t.Fatalf("%s: Save bytes differ from Marshal", algo)
		}
		// The envelope's payload must round-trip through RawMessage
		// untouched: decode and re-marshal, compare bytes.
		var env Envelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		redone, err := json.Marshal(&env)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !bytes.Equal(data, redone) {
			t.Fatalf("%s: envelope is not a RawMessage fixed point", algo)
		}
	}
}
