package modelio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/simfleet"
)

// trainedModels trains one small model per algorithm on a shared tiny
// fleet, plus the samples to verify score equality on.
func trainedModels(t *testing.T) map[core.Algorithm]*core.Model {
	t.Helper()
	cfg := simfleet.TinyConfig()
	cfg.FailureScale = 0.04
	fleet, err := simfleet.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[core.Algorithm]*core.Model)
	for _, algo := range core.Algorithms() {
		pc := core.DefaultConfig("I")
		pc.Algorithm = algo
		if algo == core.AlgoCNNLSTM {
			pc.SeqLen = 3
		}
		m, _, err := core.TrainOnFleet(fleet.Data, fleet.Tickets, pc)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		out[algo] = m
	}
	return out
}

func TestRoundTripAllAlgorithms(t *testing.T) {
	models := trainedModels(t)
	for algo, m := range models {
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", algo, err)
		}
		restored, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", algo, err)
		}
		if restored.Threshold != m.Threshold {
			t.Errorf("%s: threshold %g != %g", algo, restored.Threshold, m.Threshold)
		}
		if restored.Config.Algorithm != algo {
			t.Errorf("%s: algorithm %q after round trip", algo, restored.Config.Algorithm)
		}
		if restored.Config.Group != m.Config.Group {
			t.Errorf("%s: group changed", algo)
		}
		// Scores must match bit-for-bit on arbitrary inputs.
		width := m.Width
		if algo == core.AlgoCNNLSTM {
			width = m.Width * m.Config.SeqLen
		}
		for trial := 0; trial < 10; trial++ {
			x := make([]float64, width)
			for i := range x {
				x[i] = float64((trial+1)*(i+3)%97) * 1.5
			}
			if got, want := restored.Predict(x), m.Predict(x); got != want {
				t.Fatalf("%s: prediction drift after round trip: %g vs %g", algo, got, want)
			}
		}
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	models := trainedModels(t)
	m := models[core.AlgoRF]
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.Width)
	if restored.Predict(x) != m.Predict(x) {
		t.Fatal("prediction drift")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Unmarshal([]byte(`{"version":99,"algorithm":"RF","group":"SFWB","threshold":0.5,"payload":{}}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := Unmarshal([]byte(`{"version":1,"algorithm":"RF","group":"NOPE","threshold":0.5,"payload":{}}`)); err == nil {
		t.Fatal("unknown group accepted")
	}
	if _, err := Unmarshal([]byte(`{"version":1,"algorithm":"RF","group":"SFWB","threshold":2,"payload":{}}`)); err == nil {
		t.Fatal("out-of-range threshold accepted")
	}
	if _, err := Unmarshal([]byte(`{"version":1,"algorithm":"XGB","group":"SFWB","threshold":0.5,"payload":{}}`)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Unmarshal([]byte(`{"version":1,"algorithm":"RF","group":"SFWB","threshold":0.5,"payload":{"Trees":[]}}`)); err == nil {
		t.Fatal("empty forest accepted")
	}
}
