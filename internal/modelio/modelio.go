// Package modelio serialises trained MFPA models to a versioned JSON
// envelope and back. This is the distribution path the paper describes
// for deployment: "the model is iterated every two months and pushed to
// the user for updates" — the server trains and Saves, the client-side
// agent Loads and scores locally.
package modelio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/forest"
	"repro/internal/ml/gbdt"
	"repro/internal/ml/nn"
	"repro/internal/ml/svm"
)

// FormatVersion identifies the envelope layout; bump on breaking
// changes so old clients fail loudly instead of mis-scoring.
const FormatVersion = 1

// Envelope is the on-the-wire form of a trained model. The payload
// stays raw on the read side so the algorithm field can pick its
// concrete type before decoding.
type Envelope struct {
	Version   int             `json:"version"`
	Algorithm core.Algorithm  `json:"algorithm"`
	Group     string          `json:"group"`
	Vendor    string          `json:"vendor"`
	Threshold float64         `json:"threshold"`
	Width     int             `json:"width"`
	SeqLen    int             `json:"seq_len,omitempty"`
	Payload   json.RawMessage `json:"payload"`
}

// writeEnvelope mirrors Envelope field-for-field but carries the
// payload as the exported value itself, so Save/Marshal serialise it
// once in place instead of marshalling to a RawMessage and then
// re-validating those bytes inside the envelope marshal. The JSON
// produced is byte-identical to the RawMessage form.
type writeEnvelope struct {
	Version   int            `json:"version"`
	Algorithm core.Algorithm `json:"algorithm"`
	Group     string         `json:"group"`
	Vendor    string         `json:"vendor"`
	Threshold float64        `json:"threshold"`
	Width     int            `json:"width"`
	SeqLen    int            `json:"seq_len,omitempty"`
	Payload   any            `json:"payload"`
}

// Save writes a trained model to w through a buffered writer, so
// envelopes stream to files in large writes instead of the encoder's
// small fragments.
func Save(w io.Writer, m *core.Model) error {
	env, err := encode(m)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(env); err != nil {
		return fmt.Errorf("modelio: encode envelope: %w", err)
	}
	return bw.Flush()
}

// Marshal returns a trained model's envelope bytes.
func Marshal(m *core.Model) ([]byte, error) {
	env, err := encode(m)
	if err != nil {
		return nil, err
	}
	return json.Marshal(env)
}

// SaveFile atomically replaces path with the model's envelope: the
// bytes are staged in a same-directory temp file, fsynced, and renamed
// into place, so a crash mid-save leaves the previously published
// model intact rather than a torn envelope that clients reject.
func SaveFile(path string, m *core.Model) error {
	return atomicio.WriteFile(path, func(w io.Writer) error { return Save(w, m) })
}

// LoadFile reads a model envelope from path.
func LoadFile(path string) (*core.Model, error) {
	f, err := atomicio.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func encode(m *core.Model) (*writeEnvelope, error) {
	var payload any
	switch clf := m.Classifier.(type) {
	case *forest.Model:
		payload = clf.Export()
	case *bayes.Model:
		payload = clf.Export()
	case *svm.Model:
		payload = clf.Export()
	case *gbdt.Model:
		payload = clf.Export()
	case interface{ Export() nn.Exported }:
		payload = clf.Export()
	default:
		return nil, fmt.Errorf("modelio: unsupported classifier %T", m.Classifier)
	}
	env := &writeEnvelope{
		Version:   FormatVersion,
		Algorithm: m.Config.Algorithm,
		Group:     m.Config.Group.String(),
		Vendor:    m.Config.Vendor,
		Threshold: m.Threshold,
		Width:     m.Width,
		Payload:   payload,
	}
	if m.Config.Algorithm == core.AlgoCNNLSTM {
		env.SeqLen = m.Config.SeqLen
	}
	return env, nil
}

// Load reads a model envelope from r through a buffered reader.
func Load(r io.Reader) (*core.Model, error) {
	var env Envelope
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("modelio: decode envelope: %w", err)
	}
	return decode(&env)
}

// Unmarshal reconstructs a model from envelope bytes.
func Unmarshal(data []byte) (*core.Model, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("modelio: decode envelope: %w", err)
	}
	return decode(&env)
}

func decode(env *Envelope) (*core.Model, error) {
	if env.Version != FormatVersion {
		return nil, fmt.Errorf("modelio: envelope version %d, want %d", env.Version, FormatVersion)
	}
	group, ok := features.ParseGroup(env.Group)
	if !ok {
		return nil, fmt.Errorf("modelio: unknown feature group %q", env.Group)
	}
	if env.Threshold <= 0 || env.Threshold >= 1 {
		return nil, fmt.Errorf("modelio: threshold %g out of (0,1)", env.Threshold)
	}

	var clf ml.Classifier
	switch env.Algorithm {
	case core.AlgoRF:
		var e forest.Exported
		if err := json.Unmarshal(env.Payload, &e); err != nil {
			return nil, fmt.Errorf("modelio: RF payload: %w", err)
		}
		m, err := forest.Import(e)
		if err != nil {
			return nil, err
		}
		clf = m
	case core.AlgoBayes:
		var e bayes.Exported
		if err := json.Unmarshal(env.Payload, &e); err != nil {
			return nil, fmt.Errorf("modelio: Bayes payload: %w", err)
		}
		m, err := bayes.Import(e)
		if err != nil {
			return nil, err
		}
		clf = m
	case core.AlgoSVM:
		var e svm.Exported
		if err := json.Unmarshal(env.Payload, &e); err != nil {
			return nil, fmt.Errorf("modelio: SVM payload: %w", err)
		}
		m, err := svm.Import(e)
		if err != nil {
			return nil, err
		}
		clf = m
	case core.AlgoGBDT:
		var e gbdt.Exported
		if err := json.Unmarshal(env.Payload, &e); err != nil {
			return nil, fmt.Errorf("modelio: GBDT payload: %w", err)
		}
		m, err := gbdt.Import(e)
		if err != nil {
			return nil, err
		}
		clf = m
	case core.AlgoCNNLSTM:
		var e nn.Exported
		if err := json.Unmarshal(env.Payload, &e); err != nil {
			return nil, fmt.Errorf("modelio: CNN_LSTM payload: %w", err)
		}
		m, err := nn.Import(e)
		if err != nil {
			return nil, err
		}
		clf = m
	default:
		return nil, fmt.Errorf("modelio: unknown algorithm %q", env.Algorithm)
	}

	cfg := core.DefaultConfig(env.Vendor)
	cfg.Group = group
	cfg.Algorithm = env.Algorithm
	if env.SeqLen > 0 {
		cfg.SeqLen = env.SeqLen
	}
	return &core.Model{
		Config:      cfg,
		Classifier:  clf,
		TrainerName: string(env.Algorithm),
		Width:       env.Width,
		Threshold:   env.Threshold,
	}, nil
}
