package mfpa

// CLI integration test: builds the four commands and drives the full
// generate → train(+save) → agent-replay → report pipeline through
// their real flag surfaces.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one command into dir and returns the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	gen := buildCmd(t, dir, "mfpagen")
	train := buildCmd(t, dir, "mfpatrain")
	agentBin := buildCmd(t, dir, "mfpaagent")
	report := buildCmd(t, dir, "mfpareport")

	fleetCSV := filepath.Join(dir, "fleet.csv")
	ticketsCSV := filepath.Join(dir, "tickets.csv")
	truthCSV := filepath.Join(dir, "truth.csv")
	modelJSON := filepath.Join(dir, "model.json")

	// Generate.
	out := run(t, gen, "-out", fleetCSV, "-tickets", ticketsCSV, "-truth", truthCSV,
		"-scale", "0.03", "-days", "100", "-seed", "7")
	if !strings.Contains(out, "wrote "+fleetCSV) {
		t.Fatalf("gen output: %s", out)
	}
	for _, p := range []string{fleetCSV, ticketsCSV, truthCSV} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("output %s missing or empty", p)
		}
	}

	// Train on the generated CSVs and save the model.
	out = run(t, train, "-data", fleetCSV, "-tickets", ticketsCSV,
		"-vendor", "I", "-save", modelJSON)
	if !strings.Contains(out, "TPR=") || !strings.Contains(out, "model envelope saved") {
		t.Fatalf("train output: %s", out)
	}
	if st, err := os.Stat(modelJSON); err != nil || st.Size() == 0 {
		t.Fatal("model envelope missing")
	}

	// Replay through the agent.
	out = run(t, agentBin, "-model", modelJSON, "-data", fleetCSV)
	if !strings.Contains(out, "drives scanned") {
		t.Fatalf("agent output: %s", out)
	}

	// One cheap report experiment, with SVG output.
	svgDir := filepath.Join(dir, "figs")
	out = run(t, report, "-exp", "fig2", "-scale", "0.03", "-svg", svgDir)
	if !strings.Contains(out, "Fig 2") {
		t.Fatalf("report output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(svgDir, "fig2_bathtub.svg")); err != nil {
		t.Fatal("SVG figure not written")
	}

	// -list enumerates the registry.
	out = run(t, report, "-list")
	if !strings.Contains(out, "fig9") || !strings.Contains(out, "gridsearch") {
		t.Fatalf("list output: %s", out)
	}
}
