package mfpa

// The benchmark harness regenerates every table and figure of the
// paper's evaluation section (see DESIGN.md's experiment index). Each
// benchmark runs its experiment end to end on a shared simulated fleet
// and reports the headline quantity the paper's artefact shows as a
// custom metric, so `go test -bench=. -benchmem` doubles as the
// reproduction run:
//
//	BenchmarkFig9FeatureGroups   ... tpr_sfwb=0.96 fpr_sfwb=0.008
//
// Benchmarks use a reduced fleet scale for tractable runtimes; the full
// report (EXPERIMENTS.md) comes from `mfpareport -scale 0.2`.

import (
	"sync"
	"testing"

	"repro/internal/experiments"
)

// benchScale keeps individual benchmarks in the seconds range.
const benchScale = 0.05

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
	benchCtxErr  error
)

func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx, benchCtxErr = experiments.NewContext(benchScale, 1)
	})
	if benchCtxErr != nil {
		b.Fatal(benchCtxErr)
	}
	return benchCtx
}

func BenchmarkTableI(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.TableI()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DriveLevelShare, "drive_share")
		b.ReportMetric(res.SystemLevelShare, "system_share")
	}
}

func BenchmarkTableVI(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.TableVI()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].PaperRR, "vendorI_rr")
	}
}

func BenchmarkFig2Bathtub(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.InfantShare(), "infant_share")
		b.ReportMetric(res.WearOutShare(), "wearout_share")
	}
}

func BenchmarkFig3Firmware(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MonotoneViolations()), "monotone_violations")
	}
}

func BenchmarkFig4CumulativeW(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FinalGapRatio(), "faulty_healthy_ratio")
	}
}

func BenchmarkFig5CumulativeB(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FinalGapRatio(), "faulty_healthy_ratio")
	}
}

func BenchmarkFig6Discontinuity(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DropCandidates), "drop_candidates")
	}
}

func BenchmarkFig9FeatureGroups(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row("SFWB"); ok {
			b.ReportMetric(row.TPR, "tpr_sfwb")
			b.ReportMetric(row.FPR, "fpr_sfwb")
		}
		if row, ok := res.Row("S"); ok {
			b.ReportMetric(row.TPR, "tpr_s")
			b.ReportMetric(row.FPR, "fpr_s")
		}
	}
}

func BenchmarkFig10Algorithms(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row("RF"); ok {
			b.ReportMetric(row.TPR, "tpr_rf")
		}
		if row, ok := res.Row("CNN_LSTM"); ok {
			b.ReportMetric(row.TPR, "tpr_cnnlstm")
		}
	}
}

func BenchmarkFig11Vendors(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row("I"); ok {
			b.ReportMetric(row.AUC, "auc_vendorI")
		}
		if row, ok := res.Row("IV"); ok {
			b.ReportMetric(row.AUC, "auc_vendorIV")
		}
	}
}

func BenchmarkFig12TimePeriods(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FPRRise(), "fpr_rise")
		b.ReportMetric(float64(len(res.Months)), "months")
	}
}

func BenchmarkFig17FeatureSelection(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig17()
		if err != nil {
			b.Fatal(err)
		}
		last := res.Steps[len(res.Steps)-1]
		b.ReportMetric(last.AUC, "final_auc")
		b.ReportMetric(float64(len(res.Selected)), "features")
	}
}

func BenchmarkFig18StateOfArt(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig18()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row("MFPA (SFWB+RF)"); ok {
			b.ReportMetric(row.AUC, "auc_mfpa")
		}
		if row, ok := res.Row("SMART-threshold"); ok {
			b.ReportMetric(row.TPR, "tpr_threshold")
		}
	}
}

func BenchmarkFig19Lookahead(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig19()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TPRAt(5), "tpr_5d")
		b.ReportMetric(res.TPRAt(19), "tpr_19d")
	}
}

func BenchmarkFig20Overhead(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig20()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PredictionsPerSecond, "predictions/s")
	}
}

func BenchmarkAblationTheta(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.AblationTheta()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row("θ=7"); ok {
			b.ReportMetric(row.TPR-row.FPR, "youden_theta7")
		}
	}
}

func BenchmarkAblationGapPolicy(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.AblationGapPolicy()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row("drop≥10,fill≤3"); ok {
			b.ReportMetric(row.AUC, "auc_paper_policy")
		}
	}
}

func BenchmarkAblationSegmentation(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.AblationSegmentation()
		if err != nil {
			b.Fatal(err)
		}
		tp, _ := res.Row("timepoint-based")
		rnd, _ := res.Row("random split")
		b.ReportMetric(rnd.AUC-tp.AUC, "leak_optimism")
	}
}

func BenchmarkAblationCrossValidation(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.AblationCrossValidation()
		if err != nil {
			b.Fatal(err)
		}
		ts, _ := res.Row("time-series CV estimate")
		b.ReportMetric(ts.AUC, "tscv_auc")
	}
}

func BenchmarkAblationSampling(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.AblationSampling()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row("3:1"); ok {
			b.ReportMetric(row.TPR, "tpr_3to1")
		}
	}
}

func BenchmarkAblationCumulative(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.AblationCumulative()
		if err != nil {
			b.Fatal(err)
		}
		cum, _ := res.Row("cumulative")
		daily, _ := res.Row("daily counts")
		b.ReportMetric(cum.AUC-daily.AUC, "cumulative_gain")
	}
}

func BenchmarkAblationPositiveWindow(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.AblationPositiveWindow()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row("7d"); ok {
			b.ReportMetric(row.TPR, "tpr_7d")
		}
	}
}

// BenchmarkPredictLatency measures the per-record scoring cost of the
// trained model — the paper's client-side microsecond-prediction claim.
func BenchmarkPredictLatency(b *testing.B) {
	c := benchContext(b)
	fleet := c.Fleet
	cfg := DefaultConfig("I")
	cfg.Registries = c.Registries
	model, _, err := Train(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		b.Fatal(err)
	}
	p, err := Prepare(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		b.Fatal(err)
	}
	samples, err := p.BuildSamples()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(samples[i%len(samples)].X)
	}
}

func BenchmarkGridSearch(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.GridSearch()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BestRF.Score, "best_rf_auc")
		b.ReportMetric(res.BestGBDT.Score, "best_gbdt_auc")
	}
}

func BenchmarkChannelDrop(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Channels()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) > 0 {
			b.ReportMetric(res.Rows[0].TPR, "tpr_all_channels")
		}
	}
}
