// Command mfpagen simulates a consumer SSD fleet and writes its
// telemetry to a CSV file or an MFPAC binary columnar container (plus
// a tickets CSV and a ground-truth CSV), so the other tools and
// external analyses can consume a fixed dataset.
//
// Usage:
//
//	mfpagen -out fleet.csv [-format csv|mfpac] [-tickets tickets.csv]
//	        [-truth truth.csv] [-seed 1] [-days 210] [-scale 0.2] [-drift]
//
// The default -format "" picks by -out extension: .mfpac writes the
// binary container, anything else CSV. The reading tools (mfpatrain,
// mfpaagent) detect either format by its leading bytes.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/simfleet"
	"repro/internal/ticket"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfpagen: ")

	var (
		out         = flag.String("out", "fleet.csv", "telemetry output path")
		format      = flag.String("format", "", "telemetry format: csv|mfpac (empty = by -out extension)")
		ticketsPath = flag.String("tickets", "", "tickets CSV output path (optional)")
		truthPath   = flag.String("truth", "", "ground-truth CSV output path (optional)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		days        = flag.Int("days", 0, "observation window length in days (0 = default)")
		scale       = flag.Float64("scale", 0.2, "failure-count scale factor")
		drift       = flag.Bool("drift", false, "use the drifting-fleet configuration (Figs. 12/16)")
		workers     = flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS, 1 = serial; output is identical)")
	)
	flag.Parse()

	cfg := simfleet.DefaultConfig()
	if *drift {
		cfg = simfleet.DriftConfig()
	}
	cfg.Seed = *seed
	cfg.FailureScale = *scale
	cfg.Workers = *workers
	if *days > 0 {
		cfg.Days = *days
	}

	telFormat := dataset.FormatForPath(*out)
	if *format != "" {
		var ok bool
		if telFormat, ok = dataset.ParseFormat(*format); !ok {
			log.Fatalf("unknown -format %q (want csv or mfpac)", *format)
		}
	}

	// The frame path writes telemetry straight from the simulation
	// arena; the CSV bytes are identical to the record path's, and the
	// MFPAC container encodes its blocks from the same slabs.
	res, err := simfleet.SimulateFrame(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeTelemetry(*out, res.Frame, telFormat); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%s): %d drives, %d records, %d faulty\n",
		*out, telFormat, res.Frame.Drives(), res.Frame.Len(), res.FaultyCount())

	if *ticketsPath != "" {
		if err := writeTickets(*ticketsPath, res.Tickets); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d tickets\n", *ticketsPath, res.Tickets.Len())
	}
	if *truthPath != "" {
		if err := writeTruth(*truthPath, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d drives\n", *truthPath, len(res.Truth))
	}
}

func writeTelemetry(path string, fr *dataset.Frame, format dataset.Format) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.WriteTelemetry(f, fr, format); err != nil {
		return err
	}
	return f.Close()
}

func writeTickets(path string, store *ticket.Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ticket.WriteCSV(f, store); err != nil {
		return err
	}
	return f.Close()
}

func writeTruth(path string, res *simfleet.FrameResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"sn", "vendor", "model", "firmware", "faulty", "fail_day", "fail_hours", "kind"}); err != nil {
		return err
	}
	sns := make([]string, 0, len(res.Truth))
	for sn := range res.Truth {
		sns = append(sns, sn)
	}
	sort.Strings(sns)
	for _, sn := range sns {
		t := res.Truth[sn]
		if err := w.Write([]string{
			t.SerialNumber, t.Vendor, t.Model, t.Firmware,
			strconv.FormatBool(t.Faulty), strconv.Itoa(t.FailDay),
			strconv.FormatFloat(t.FailPowerOnHours, 'f', 1, 64), t.Kind,
		}); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}
