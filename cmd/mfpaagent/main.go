// Command mfpaagent is the client-side monitor as a CLI: it loads a
// model envelope (from mfpatrain -save or fleetops publishing), replays
// telemetry CSV (from mfpagen) through the agent, and reports every
// alarm with its top contributing features.
//
// Usage:
//
//	mfpaagent -model model.json -data fleet.csv [-sn I-F000000] [-alarm-after 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/agent"
	"repro/internal/dataset"
	"repro/internal/modelio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfpaagent: ")

	var (
		modelPath  = flag.String("model", "", "model envelope path (required)")
		dataPath   = flag.String("data", "", "telemetry CSV path (required)")
		sn         = flag.String("sn", "", "replay only this drive (empty = all)")
		alarmAfter = flag.Int("alarm-after", 2, "consecutive flags before alarming")
		verbose    = flag.Bool("v", false, "print every flagged observation, not just alarms")
	)
	flag.Parse()
	if *modelPath == "" || *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	model, err := modelio.Load(mf)
	mf.Close()
	if err != nil {
		log.Fatal(err)
	}

	df, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	data, err := dataset.ReadCSV(df)
	df.Close()
	if err != nil {
		log.Fatal(err)
	}

	ag, err := agent.New(model, agent.Options{AlarmAfter: *alarmAfter, Explain: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agent: %s/%s model, threshold %.3f, alarm after %d flags\n",
		model.TrainerName, model.Config.Group, model.Threshold, *alarmAfter)

	drives := data.SerialNumbers()
	if *sn != "" {
		if _, ok := data.Series(*sn); !ok {
			log.Fatalf("drive %s not in %s", *sn, *dataPath)
		}
		drives = []string{*sn}
	}

	alarms, scanned := 0, 0
	for _, drive := range drives {
		series, _ := data.Series(drive)
		// Only vendor-matched drives can be scored meaningfully.
		if model.Config.Vendor != "" && series.Vendor != model.Config.Vendor {
			continue
		}
		scanned++
		for i := range series.Records {
			as, err := ag.Observe(series.Records[i])
			if err != nil {
				log.Fatal(err)
			}
			if *verbose && as.Flagged {
				fmt.Printf("%s day %d: P=%.3f flagged (%d consecutive)\n",
					drive, as.Day, as.Probability, as.ConsecutiveFlags)
			}
			if as.Alarmed {
				alarms++
				fmt.Printf("%s day %d: ALARM P=%.3f", drive, as.Day, as.Probability)
				for _, f := range as.TopFactors {
					fmt.Printf("  %s+%.3f", f.Feature, f.Contribution)
				}
				fmt.Println()
				break
			}
		}
	}
	fmt.Printf("%d drives scanned, %d alarms\n", scanned, alarms)
}
