// Command mfpaagent is the client-side monitor as a CLI: it loads a
// model envelope (from mfpatrain -save or fleetops publishing), replays
// telemetry (from mfpagen, CSV or the MFPAC binary container — the
// format is detected from the file's leading bytes) through the agent,
// and reports every alarm with its top contributing features.
//
// Usage:
//
//	mfpaagent -model model.json -data fleet.csv [-sn I-F000000] [-alarm-after 2]
//	mfpaagent -model model.json -data fleet.csv -daily [-workers 0]
//
// The default mode replays drive by drive through per-record Observe
// calls. -daily replays the same telemetry as the fleet service would
// serve it: day-major batches through the incremental sharded scoring
// engine, with -workers goroutines. -chaos adds a seeded fault
// campaign on top of -daily — corrupted records, transient batch
// faults, scoring-backend faults — to demonstrate the quarantine and
// degradation machinery; the same seed replays the same campaign.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/modelio"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfpaagent: ")

	var (
		modelPath  = flag.String("model", "", "model envelope path (required)")
		dataPath   = flag.String("data", "", "telemetry path, CSV or MFPAC (required)")
		sn         = flag.String("sn", "", "replay only this drive (empty = all)")
		alarmAfter = flag.Int("alarm-after", 2, "consecutive flags before alarming")
		daily      = flag.Bool("daily", false, "batched day-major sweep through the sharded scoring engine")
		workers    = flag.Int("workers", 0, "daily-sweep scoring goroutines (0 = GOMAXPROCS, 1 = serial)")
		statePath  = flag.String("state", "", "agent state checkpoint: loaded at start if present, saved atomically at exit (per-record mode)")
		chaos      = flag.Bool("chaos", false, "with -daily: run a seeded fault-injection campaign (corrupt records, transient and scoring faults)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "chaos campaign seed; the same seed replays the same faults")
		chaosRate  = flag.Float64("chaos-rate", 0.01, "per-record corruption probability for -chaos")
		verbose    = flag.Bool("v", false, "print every flagged observation, not just alarms")
	)
	flag.Parse()
	if *modelPath == "" || *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	model, err := modelio.LoadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}

	df, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	// Either telemetry format loads into the columnar frame; the replay
	// paths below still walk records, so materialise them once.
	frame, err := dataset.ReadTelemetryWorkers(df, *workers)
	df.Close()
	if err != nil {
		log.Fatal(err)
	}
	data := frame.ToDataset()

	fmt.Printf("agent: %s/%s model, threshold %.3f, alarm after %d flags\n",
		model.TrainerName, model.Config.Group, model.Threshold, *alarmAfter)

	if *daily {
		var campaign *chaosCampaign
		if *chaos {
			campaign = newChaosCampaign(*chaosSeed, *chaosRate)
		}
		runDaily(model, data, *alarmAfter, *workers, *verbose, campaign)
		return
	}
	if *chaos {
		log.Fatal("-chaos requires -daily")
	}

	ag, err := agent.New(model, agent.Options{AlarmAfter: *alarmAfter, Explain: true})
	if err != nil {
		log.Fatal(err)
	}
	if *statePath != "" {
		if _, serr := os.Stat(*statePath); serr == nil {
			if err := ag.LoadStateFile(*statePath); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("agent: restored state from %s\n", *statePath)
		}
	}

	drives := data.SerialNumbers()
	if *sn != "" {
		if _, ok := data.Series(*sn); !ok {
			log.Fatalf("drive %s not in %s", *sn, *dataPath)
		}
		drives = []string{*sn}
	}

	alarms, scanned := 0, 0
	for _, drive := range drives {
		series, _ := data.Series(drive)
		// Only vendor-matched drives can be scored meaningfully.
		if model.Config.Vendor != "" && series.Vendor != model.Config.Vendor {
			continue
		}
		scanned++
		for i := range series.Records {
			as, err := ag.Observe(series.Records[i])
			if err != nil {
				log.Fatal(err)
			}
			if *verbose && as.Flagged {
				fmt.Printf("%s day %d: P=%.3f flagged (%d consecutive)\n",
					drive, as.Day, as.Probability, as.ConsecutiveFlags)
			}
			if as.Alarmed {
				alarms++
				fmt.Printf("%s day %d: ALARM P=%.3f", drive, as.Day, as.Probability)
				for _, f := range as.TopFactors {
					fmt.Printf("  %s+%.3f", f.Feature, f.Contribution)
				}
				fmt.Println()
				break
			}
		}
	}
	fmt.Printf("%d drives scanned, %d alarms\n", scanned, alarms)
	if *statePath != "" {
		if err := ag.SaveStateFile(*statePath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("agent: state checkpointed to %s\n", *statePath)
	}
}

// chaosCampaign bundles the seeded injectors for a -chaos run.
type chaosCampaign struct {
	corruptor *faultinject.RecordCorruptor
	faults    *faultinject.ScorerFaults
	corrupted int
	retries   int
}

func newChaosCampaign(seed int64, rate float64) *chaosCampaign {
	return &chaosCampaign{
		corruptor: faultinject.NewRecordCorruptor(faultinject.CorruptorConfig{Seed: seed, Rate: rate}),
		faults: faultinject.NewScorerFaults(faultinject.ScorerConfig{
			Seed: seed, ObserveP: 0.02, ScoreP: 0.02,
		}),
	}
}

// runDaily replays the telemetry as a fleet service would see it
// arrive: one day-major batch at a time through the sharded incremental
// scorer, with alarms reported once per drive.
func runDaily(model *core.Model, data *dataset.Dataset, alarmAfter, workers int, verbose bool, campaign *chaosCampaign) {
	opts := serve.Options{Workers: workers, AlarmAfter: alarmAfter}
	if campaign != nil {
		opts.Faults = serve.FaultHooks{
			Observe: campaign.faults.Observe,
			Score:   campaign.faults.Score,
			Swap:    campaign.faults.Swap,
		}
	}
	sc, err := serve.New(model, opts)
	if err != nil {
		log.Fatal(err)
	}

	byDay := make(map[int][]dataset.Record)
	var days []int
	drives := 0
	data.Each(func(s *dataset.DriveSeries) {
		if model.Config.Vendor != "" && s.Vendor != model.Config.Vendor {
			return
		}
		drives++
		for i := range s.Records {
			d := s.Records[i].Day
			if len(byDay[d]) == 0 {
				days = append(days, d)
			}
			byDay[d] = append(byDay[d], s.Records[i])
		}
	})
	sort.Ints(days)

	alarmed := make(map[string]bool)
	scored, flagged, dropped := 0, 0, 0
	quarantined, skipped, degradedRows := 0, 0, 0
	for _, day := range days {
		batch := byDay[day]
		if campaign != nil {
			var clog []faultinject.Corruption
			batch, clog = campaign.corruptor.Corrupt(batch)
			campaign.corrupted += len(clog)
		}
		var as []serve.Assessment
		var st serve.SweepStats
		for attempt := 0; ; attempt++ {
			as, st, err = sc.ObserveDay(batch)
			if err == nil || attempt >= 3 || !faultinject.IsTransient(err) {
				break
			}
			if campaign != nil {
				campaign.retries++
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		quarantined += st.Quarantined
		skipped += st.Skipped
		degradedRows += st.Degraded
		for i := range as {
			a := &as[i]
			if a.Dropped {
				dropped++
				continue
			}
			if a.Quarantined {
				continue
			}
			scored++
			if a.Flagged {
				flagged++
				if verbose {
					fmt.Printf("%s day %d: P=%.3f flagged (%d consecutive)\n",
						a.SerialNumber, a.Day, a.Probability, a.ConsecutiveFlags)
				}
			}
			if a.Alarmed && !alarmed[a.SerialNumber] {
				alarmed[a.SerialNumber] = true
				fmt.Printf("%s day %d: ALARM P=%.3f", a.SerialNumber, a.Day, a.Probability)
				if w, ok := sc.Window(a.SerialNumber); ok && w.Days > 1 {
					fmt.Printf("  [%dd window: %.0f W/d, %.0f B/d, media err +%.0f]",
						w.Days, w.WPerDay, w.BPerDay, w.MediaErrGrowth)
				}
				fmt.Println()
			}
		}
	}
	fmt.Printf("%d drives swept over %d days: %d scored (%d flagged), %d dropped, %d alarms\n",
		drives, len(days), scored, flagged, dropped, len(alarmed))
	if campaign != nil {
		observe, score, swap := campaign.faults.Fired()
		fmt.Printf("chaos: %d records corrupted, %d observe faults (%d retried), %d score faults, %d swap faults\n",
			campaign.corrupted, observe, campaign.retries, score, swap)
		fmt.Printf("chaos: %d records quarantined their drive, %d skipped while quarantined, %d rows scored degraded\n",
			quarantined, skipped, degradedRows)
		ledger := sc.QuarantineReasons()
		fmt.Printf("chaos: quarantine ledger holds %d drives\n", len(ledger))
		if verbose {
			for _, e := range ledger {
				fmt.Printf("  %s day %d: %s (%s)\n", e.SerialNumber, e.Day, e.Reason, e.Err)
			}
		}
	}
}
