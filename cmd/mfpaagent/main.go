// Command mfpaagent is the client-side monitor as a CLI: it loads a
// model envelope (from mfpatrain -save or fleetops publishing), replays
// telemetry (from mfpagen, CSV or the MFPAC binary container — the
// format is detected from the file's leading bytes) through the agent,
// and reports every alarm with its top contributing features.
//
// Usage:
//
//	mfpaagent -model model.json -data fleet.csv [-sn I-F000000] [-alarm-after 2]
//	mfpaagent -model model.json -data fleet.csv -daily [-workers 0]
//
// The default mode replays drive by drive through per-record Observe
// calls. -daily replays the same telemetry as the fleet service would
// serve it: day-major batches through the incremental sharded scoring
// engine, with -workers goroutines.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/modelio"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfpaagent: ")

	var (
		modelPath  = flag.String("model", "", "model envelope path (required)")
		dataPath   = flag.String("data", "", "telemetry path, CSV or MFPAC (required)")
		sn         = flag.String("sn", "", "replay only this drive (empty = all)")
		alarmAfter = flag.Int("alarm-after", 2, "consecutive flags before alarming")
		daily      = flag.Bool("daily", false, "batched day-major sweep through the sharded scoring engine")
		workers    = flag.Int("workers", 0, "daily-sweep scoring goroutines (0 = GOMAXPROCS, 1 = serial)")
		verbose    = flag.Bool("v", false, "print every flagged observation, not just alarms")
	)
	flag.Parse()
	if *modelPath == "" || *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	model, err := modelio.Load(mf)
	mf.Close()
	if err != nil {
		log.Fatal(err)
	}

	df, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	// Either telemetry format loads into the columnar frame; the replay
	// paths below still walk records, so materialise them once.
	frame, err := dataset.ReadTelemetryWorkers(df, *workers)
	df.Close()
	if err != nil {
		log.Fatal(err)
	}
	data := frame.ToDataset()

	fmt.Printf("agent: %s/%s model, threshold %.3f, alarm after %d flags\n",
		model.TrainerName, model.Config.Group, model.Threshold, *alarmAfter)

	if *daily {
		runDaily(model, data, *alarmAfter, *workers, *verbose)
		return
	}

	ag, err := agent.New(model, agent.Options{AlarmAfter: *alarmAfter, Explain: true})
	if err != nil {
		log.Fatal(err)
	}

	drives := data.SerialNumbers()
	if *sn != "" {
		if _, ok := data.Series(*sn); !ok {
			log.Fatalf("drive %s not in %s", *sn, *dataPath)
		}
		drives = []string{*sn}
	}

	alarms, scanned := 0, 0
	for _, drive := range drives {
		series, _ := data.Series(drive)
		// Only vendor-matched drives can be scored meaningfully.
		if model.Config.Vendor != "" && series.Vendor != model.Config.Vendor {
			continue
		}
		scanned++
		for i := range series.Records {
			as, err := ag.Observe(series.Records[i])
			if err != nil {
				log.Fatal(err)
			}
			if *verbose && as.Flagged {
				fmt.Printf("%s day %d: P=%.3f flagged (%d consecutive)\n",
					drive, as.Day, as.Probability, as.ConsecutiveFlags)
			}
			if as.Alarmed {
				alarms++
				fmt.Printf("%s day %d: ALARM P=%.3f", drive, as.Day, as.Probability)
				for _, f := range as.TopFactors {
					fmt.Printf("  %s+%.3f", f.Feature, f.Contribution)
				}
				fmt.Println()
				break
			}
		}
	}
	fmt.Printf("%d drives scanned, %d alarms\n", scanned, alarms)
}

// runDaily replays the telemetry as a fleet service would see it
// arrive: one day-major batch at a time through the sharded incremental
// scorer, with alarms reported once per drive.
func runDaily(model *core.Model, data *dataset.Dataset, alarmAfter, workers int, verbose bool) {
	sc, err := serve.New(model, serve.Options{Workers: workers, AlarmAfter: alarmAfter})
	if err != nil {
		log.Fatal(err)
	}

	byDay := make(map[int][]dataset.Record)
	var days []int
	drives := 0
	data.Each(func(s *dataset.DriveSeries) {
		if model.Config.Vendor != "" && s.Vendor != model.Config.Vendor {
			return
		}
		drives++
		for i := range s.Records {
			d := s.Records[i].Day
			if len(byDay[d]) == 0 {
				days = append(days, d)
			}
			byDay[d] = append(byDay[d], s.Records[i])
		}
	})
	sort.Ints(days)

	alarmed := make(map[string]bool)
	scored, flagged, dropped := 0, 0, 0
	for _, day := range days {
		as, err := sc.ObserveDay(byDay[day])
		if err != nil {
			log.Fatal(err)
		}
		for i := range as {
			a := &as[i]
			if a.Dropped {
				dropped++
				continue
			}
			scored++
			if a.Flagged {
				flagged++
				if verbose {
					fmt.Printf("%s day %d: P=%.3f flagged (%d consecutive)\n",
						a.SerialNumber, a.Day, a.Probability, a.ConsecutiveFlags)
				}
			}
			if a.Alarmed && !alarmed[a.SerialNumber] {
				alarmed[a.SerialNumber] = true
				fmt.Printf("%s day %d: ALARM P=%.3f", a.SerialNumber, a.Day, a.Probability)
				if w, ok := sc.Window(a.SerialNumber); ok && w.Days > 1 {
					fmt.Printf("  [%dd window: %.0f W/d, %.0f B/d, media err +%.0f]",
						w.Days, w.WPerDay, w.BPerDay, w.MediaErrGrowth)
				}
				fmt.Println()
			}
		}
	}
	fmt.Printf("%d drives swept over %d days: %d scored (%d flagged), %d dropped, %d alarms\n",
		drives, len(days), scored, flagged, dropped, len(alarmed))
}
