// Command mfpatrain trains and evaluates one MFPA failure predictor,
// either on a freshly simulated fleet or on CSVs produced by mfpagen.
//
// Usage:
//
//	mfpatrain [-vendor I] [-group SFWB] [-algo RF] [-seed 1]
//	          [-scale 0.1] [-data fleet.csv -tickets tickets.csv]
//	          [-bins 256] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -data accepts either telemetry format mfpagen writes (CSV or the
// MFPAC binary container); the format is detected from the file's
// leading bytes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/firmware"
	"repro/internal/modelio"
	"repro/internal/simfleet"
	"repro/internal/ticket"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfpatrain: ")

	var (
		vendor      = flag.String("vendor", "I", "vendor to train on (empty = all)")
		groupName   = flag.String("group", "SFWB", "feature group: SFWB|SFW|SFB|SF|S|W|B")
		algoName    = flag.String("algo", "RF", "algorithm: Bayes|SVM|RF|GBDT|CNN_LSTM")
		seed        = flag.Int64("seed", 1, "pipeline and fleet seed")
		scale       = flag.Float64("scale", 0.1, "failure-count scale when simulating")
		dataPath    = flag.String("data", "", "telemetry file from mfpagen, CSV or MFPAC (simulates when empty)")
		ticketsPath = flag.String("tickets", "", "tickets CSV from mfpagen (required with -data)")
		theta       = flag.Int("theta", 7, "failure-time threshold θ in days")
		posWindow   = flag.Int("window", 7, "positive sample window in days")
		ratio       = flag.Float64("ratio", 3, "negative under-sampling ratio")
		savePath    = flag.String("save", "", "write the trained model envelope to this path (optional)")
		workers     = flag.Int("workers", 0, "worker goroutines for simulation and pipeline stages (0 = GOMAXPROCS, 1 = serial; output is identical)")
		bins        = flag.Int("bins", 0, "histogram training engine bin budget for RF/GBDT (0 = 256, max 256, negative = exact sort-based splitter)")
		recordPipe  = flag.Bool("record-pipeline", false, "use the legacy record-based pipeline instead of the columnar frame path (results are identical)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memprofile  = flag.String("memprofile", "", "write a heap profile taken after training to this path")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	group, ok := features.ParseGroup(*groupName)
	if !ok {
		log.Fatalf("unknown feature group %q", *groupName)
	}

	var (
		frame *dataset.Frame
		store *ticket.Store
	)
	cfg := core.DefaultConfig(*vendor)
	cfg.Group = group
	cfg.Algorithm = core.Algorithm(*algoName)
	cfg.Seed = *seed
	cfg.Theta = *theta
	cfg.PositiveWindowDays = *posWindow
	cfg.NegativeRatio = *ratio
	cfg.Workers = *workers
	cfg.Bins = *bins

	if *dataPath != "" {
		if *ticketsPath == "" {
			log.Fatal("-tickets is required with -data")
		}
		var err error
		frame, err = readTelemetry(*dataPath, *workers)
		if err != nil {
			log.Fatal(err)
		}
		store, err = readTickets(*ticketsPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fleetCfg := simfleet.DefaultConfig()
		fleetCfg.Seed = *seed
		fleetCfg.FailureScale = *scale
		fleetCfg.Workers = *workers
		fleet, err := simfleet.SimulateFrame(fleetCfg)
		if err != nil {
			log.Fatal(err)
		}
		frame, store = fleet.Frame, fleet.Tickets
		cfg.Registries = make(map[string]*firmware.Registry)
		for _, v := range fleet.Config.Vendors {
			cfg.Registries[v.Name] = v.Firmware
		}
		fmt.Printf("simulated fleet: %d drives, %d records, %d faulty\n",
			frame.Drives(), frame.Len(), fleet.FaultyCount())
	}

	var (
		model  *core.Model
		report *core.TrainReport
		err    error
	)
	if *recordPipe {
		// Legacy path: materialise records and run the original
		// per-stage pipeline. Bit-identical results, more allocation.
		model, report, err = core.TrainOnFleet(frame.ToDataset(), store, cfg)
	} else {
		model, report, err = core.TrainOnFrame(frame, store, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nMFPA %s / %s / vendor %s\n", cfg.Group, model.TrainerName, orAll(*vendor))
	fmt.Printf("  records after cleaning: %d (dropped %d drives, filled %d records)\n",
		report.Prepared.RecordCount, report.Prepared.CleanStats.DrivesDropped, report.Prepared.CleanStats.RecordsFilled)
	fmt.Printf("  labelled failures:      %d (θ fallbacks %d)\n",
		report.Prepared.LabelStats.Labelled, report.Prepared.LabelStats.Fallbacks)
	fmt.Printf("  train samples:          %d (%d positive)\n", report.TrainSamples, report.TrainPos)
	fmt.Printf("  test samples:           %d (%d positive)\n", report.TestSamples, report.TestPos)
	fmt.Printf("  decision threshold:     %.3f\n", model.Threshold)
	fmt.Printf("\n  TPR=%.4f FPR=%.4f ACC=%.4f AUC=%.4f PDR=%.4f\n",
		report.Eval.TPR(), report.Eval.FPR(), report.Eval.Accuracy(), report.Eval.AUC, report.Eval.PDR())
	fmt.Printf("  drive-level: TPR=%.4f FPR=%.4f\n",
		report.Eval.DriveConfusion.TPR(), report.Eval.DriveConfusion.FPR())
	fmt.Printf("  timings: clean=%v label=%v sample=%v train=%v eval=%v\n",
		report.Prepared.CleanTime, report.Prepared.LabelTime, report.SampleTime, report.TrainTime, report.EvalTime)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // settle allocations so the heap profile reflects retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  heap profile written to %s\n", *memprofile)
	}

	if *savePath != "" {
		if err := modelio.SaveFile(*savePath, model); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  model envelope saved to %s\n", *savePath)
	}
}

func orAll(v string) string {
	if v == "" {
		return "(all)"
	}
	return v
}

// readTelemetry loads a telemetry file of either format — the MFPAC
// binary container is detected by its magic bytes and decoded
// block-parallel, anything else goes through the CSV compat reader.
func readTelemetry(path string, workers int) (*dataset.Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadTelemetryWorkers(f, workers)
}

func readTickets(path string) (*ticket.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ticket.ReadCSV(f)
}
