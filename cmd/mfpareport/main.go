// Command mfpareport regenerates the paper's tables and figures from a
// simulated fleet. With no -exp flag it runs every experiment in the
// registry and prints them in order; a full run at -scale 0.2 is the
// repository's EXPERIMENTS.md source.
//
// Usage:
//
//	mfpareport [-exp fig9] [-scale 0.2] [-seed 1] [-list] [-svg figures]
//	           [-dump fleet.mfpac]
//
// -dump writes the exact telemetry the report ran on — to the MFPAC
// binary columnar container when the path ends in .mfpac, CSV
// otherwise — so mfpatrain/mfpaagent runs can consume the same fleet.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/simfleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfpareport: ")

	var (
		exp     = flag.String("exp", "", "experiment name (empty = all); see -list")
		scale   = flag.Float64("scale", 0.2, "failure-count scale factor")
		seed    = flag.Int64("seed", 1, "fleet seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		svgDir  = flag.String("svg", "", "directory to write SVG figures into (optional)")
		dump    = flag.String("dump", "", "write the report fleet's telemetry to this path (.mfpac = binary container, else CSV)")
		workers = flag.Int("workers", 0, "worker goroutines for simulation and experiments (0 = GOMAXPROCS, 1 = serial; output is identical)")
	)
	flag.Parse()

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-14s %s\n", r.Name, r.Description)
		}
		return
	}

	start := time.Now()
	fleetCfg := simfleet.DefaultConfig()
	fleetCfg.FailureScale = *scale
	fleetCfg.Seed = *seed
	fleetCfg.Workers = *workers
	ctx, err := experiments.NewContextWith(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d drives, %d records, %d faulty (scale %g, seed %d, %v)\n\n",
		ctx.Fleet.Data.Drives(), ctx.Fleet.Data.Len(), ctx.Fleet.FaultyCount(),
		*scale, *seed, time.Since(start).Round(time.Millisecond))

	if *dump != "" {
		if err := dumpTelemetry(*dump, ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dumped fleet telemetry to %s (%s)\n\n", *dump, dataset.FormatForPath(*dump))
	}

	runners := experiments.Registry()
	if *exp != "" {
		r, ok := experiments.Lookup(*exp)
		if !ok {
			log.Fatalf("unknown experiment %q; use -list", *exp)
		}
		runners = []experiments.Runner{r}
	}

	failed := 0
	for _, r := range runners {
		t0 := time.Now()
		out, err := r.Run(ctx)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", r.Name, err)
			continue
		}
		fmt.Println(out)
		fmt.Printf("(%s in %v)\n\n", r.Name, time.Since(t0).Round(time.Millisecond))

		if *svgDir != "" {
			if fig, ok := out.(experiments.Figurer); ok {
				files, err := fig.Figures()
				if err != nil {
					fmt.Fprintf(os.Stderr, "figures for %s failed: %v\n", r.Name, err)
					continue
				}
				for name, data := range files {
					path := filepath.Join(*svgDir, name+".svg")
					if err := os.WriteFile(path, data, 0o644); err != nil {
						log.Fatal(err)
					}
					fmt.Printf("wrote %s\n\n", path)
				}
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// dumpTelemetry writes the report fleet's telemetry in the format the
// path implies, reusing the context's columnar frame.
func dumpTelemetry(path string, ctx *experiments.Context) error {
	frame, err := ctx.FleetFrame()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.WriteTelemetry(f, frame, dataset.FormatForPath(path)); err != nil {
		return err
	}
	return f.Close()
}
