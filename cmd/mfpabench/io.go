package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/simfleet"
)

// IOSpeedup compares the MFPAC binary container against the CSV
// compat format on the same telemetry.
type IOSpeedup struct {
	CSV        Result  `json:"csv"`
	MFPAC      Result  `json:"mfpac"`
	TimeRatio  float64 `json:"time_ratio"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// IOReport is the BENCH_io.json schema.
type IOReport struct {
	GoVersion   string               `json:"go_version"`
	GoMaxProcs  int                  `json:"go_max_procs"`
	GeneratedAt string               `json:"generated_at"`
	Dataset     map[string]int       `json:"dataset"`
	CSVBytes    int                  `json:"csv_bytes"`
	MFPACBytes  int                  `json:"mfpac_bytes"`
	SizeRatio   float64              `json:"size_ratio"`
	Benchmarks  []Result             `json:"benchmarks"`
	Speedups    map[string]IOSpeedup `json:"speedups"`
}

// runIOBench measures the telemetry container formats against each
// other on the standard simulated fleet: bytes on disk, read and
// write wall-clock, and allocations. Before benchmarking it runs the
// equivalence gate — the frame loaded from MFPAC (serial and
// parallel) must be bit-identical to the frame loaded from the CSV
// twin — and aborts the report if any value differs.
func runIOBench(path string, scale float64) {
	fleetCfg := simfleet.DefaultConfig()
	fleetCfg.Seed = 1
	fleetCfg.FailureScale = scale
	fleet, err := simfleet.SimulateFrame(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}
	frame := fleet.Frame

	var csvBuf, pacBuf bytes.Buffer
	if err := dataset.WriteCSVFrame(&csvBuf, frame); err != nil {
		log.Fatal(err)
	}
	if err := dataset.WriteMFPAC(&pacBuf, frame); err != nil {
		log.Fatal(err)
	}
	csvBytes, pacBytes := csvBuf.Bytes(), pacBuf.Bytes()
	fmt.Printf("io benchmarks: %d drives, %d records — %.1f MB CSV, %.1f MB MFPAC (%.2fx smaller)\n",
		frame.Drives(), frame.Len(),
		float64(len(csvBytes))/1e6, float64(len(pacBytes))/1e6,
		float64(len(csvBytes))/float64(len(pacBytes)))

	// Equivalence gate: both containers must reconstruct the exact
	// same frame, at workers=1 and at GOMAXPROCS.
	fromCSV, err := dataset.ReadCSVFrame(bytes.NewReader(csvBytes))
	if err != nil {
		log.Fatal(err)
	}
	for _, workers := range []int{1, 0} {
		fromPac, err := dataset.ReadMFPACWorkers(bytes.NewReader(pacBytes), workers)
		if err != nil {
			log.Fatal(err)
		}
		if err := framesEqualBits(fromCSV, fromPac); err != nil {
			log.Fatalf("equivalence gate (workers=%d): %v", workers, err)
		}
	}
	fmt.Println("  equivalence gate: MFPAC load bit-identical to CSV load (workers=1 and parallel) ✓")

	readCSV := benchFn("ReadTelemetry/csv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dataset.ReadCSVFrame(bytes.NewReader(csvBytes)); err != nil {
				b.Fatal(err)
			}
		}
	})
	readPacSerial := benchFn("ReadTelemetry/mfpac/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dataset.ReadMFPACWorkers(bytes.NewReader(pacBytes), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	readPac := benchFn("ReadTelemetry/mfpac/parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dataset.ReadMFPAC(bytes.NewReader(pacBytes)); err != nil {
				b.Fatal(err)
			}
		}
	})
	writeCSV := benchFn("WriteTelemetry/csv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := dataset.WriteCSVFrame(io.Discard, frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	writePacSerial := benchFn("WriteTelemetry/mfpac/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := dataset.WriteMFPACWorkers(io.Discard, frame, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	writePac := benchFn("WriteTelemetry/mfpac/parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := dataset.WriteMFPAC(io.Discard, frame); err != nil {
				b.Fatal(err)
			}
		}
	})

	report := IOReport{
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Dataset: map[string]int{
			"drives":  frame.Drives(),
			"records": frame.Len(),
		},
		CSVBytes:   len(csvBytes),
		MFPACBytes: len(pacBytes),
		SizeRatio:  float64(len(csvBytes)) / float64(len(pacBytes)),
		Benchmarks: []Result{readCSV, readPacSerial, readPac, writeCSV, writePacSerial, writePac},
		Speedups: map[string]IOSpeedup{
			"read":         ioRatio(readCSV, readPac),
			"read_serial":  ioRatio(readCSV, readPacSerial),
			"write":        ioRatio(writeCSV, writePac),
			"write_serial": ioRatio(writeCSV, writePacSerial),
		},
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for _, key := range []string{"read", "read_serial", "write", "write_serial"} {
		s := report.Speedups[key]
		fmt.Printf("%-30s %6.2fx faster, %6.2fx fewer allocations\n", "io_"+key, s.TimeRatio, s.AllocRatio)
	}
	fmt.Printf("%-30s %6.2fx smaller on disk\n", "io_size", report.SizeRatio)
	fmt.Printf("written to %s\n", path)
}

func ioRatio(csv, pac Result) IOSpeedup {
	s := IOSpeedup{CSV: csv, MFPAC: pac}
	if pac.NsPerOp > 0 {
		s.TimeRatio = csv.NsPerOp / pac.NsPerOp
	}
	if pac.AllocsPerOp > 0 {
		s.AllocRatio = float64(csv.AllocsPerOp) / float64(pac.AllocsPerOp)
	}
	return s
}

// framesEqualBits reports the first difference between two frames,
// comparing float columns by exact bit pattern.
func framesEqualBits(a, b *dataset.Frame) error {
	if a.Drives() != b.Drives() || a.Len() != b.Len() || a.Cumulated() != b.Cumulated() {
		return fmt.Errorf("shape differs: %d/%d drives, %d/%d rows", a.Drives(), b.Drives(), a.Len(), b.Len())
	}
	for i := 0; i < a.Drives(); i++ {
		da, db := a.Drive(i), b.Drive(i)
		if *da != *db {
			return fmt.Errorf("drive %d identity differs: %+v vs %+v", i, da, db)
		}
		for row := int(da.Start); row < int(da.End); row++ {
			if a.Day(row) != b.Day(row) || a.Interpolated(row) != b.Interpolated(row) ||
				a.FirmwareAt(row) != b.FirmwareAt(row) {
				return fmt.Errorf("drive %s row %d metadata differs", da.SerialNumber, row)
			}
			for c, cols := range [][2][]float64{
				{a.SmartRow(row), b.SmartRow(row)},
				{a.WRow(row), b.WRow(row)},
				{a.BRow(row), b.BRow(row)},
			} {
				for j := range cols[0] {
					if math.Float64bits(cols[0][j]) != math.Float64bits(cols[1][j]) {
						return fmt.Errorf("drive %s row %d section %d col %d: %v vs %v",
							da.SerialNumber, row, c, j, cols[0][j], cols[1][j])
					}
				}
			}
		}
	}
	return nil
}
