package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/simfleet"
)

// ServeSpeedup compares the incremental sharded scoring engine against
// the seed serving path on one operational workload. Costs are
// normalised per delivered drive-day so sessions that replay different
// record counts stay comparable.
type ServeSpeedup struct {
	Seed              Result  `json:"seed"`
	Serve             Result  `json:"serve"`
	SeedNsPerDriveDay float64 `json:"seed_ns_per_drive_day"`
	ServeNsPerDrDay   float64 `json:"serve_ns_per_drive_day"`
	TimeRatio         float64 `json:"time_ratio"`
}

// ServeReport is the BENCH_serve.json schema.
type ServeReport struct {
	GoVersion   string                  `json:"go_version"`
	GoMaxProcs  int                     `json:"go_max_procs"`
	GeneratedAt string                  `json:"generated_at"`
	Dataset     map[string]int          `json:"dataset"`
	Benchmarks  []Result                `json:"benchmarks"`
	Speedups    map[string]ServeSpeedup `json:"speedups"`
}

func serveRatio(seed Result, seedRows int, srv Result, srvRows int) ServeSpeedup {
	s := ServeSpeedup{Seed: seed, Serve: srv}
	if seedRows > 0 {
		s.SeedNsPerDriveDay = seed.NsPerOp / float64(seedRows)
	}
	if srvRows > 0 {
		s.ServeNsPerDrDay = srv.NsPerOp / float64(srvRows)
	}
	if s.ServeNsPerDrDay > 0 {
		s.TimeRatio = s.SeedNsPerDriveDay / s.ServeNsPerDrDay
	}
	return s
}

// runServeBench measures the serving data plane on its operational
// workload: a scoring session that must deliver the last serveDays days
// of fleet assessments. The seed path has no persistent preprocessing
// state, so every session replays the drive's entire history through
// per-record Observe calls — O(history) work per served day. The
// incremental engine bulk-loads history once through the frame-native
// ReplayFrame catch-up (no scoring) and then serves each day with O(1)
// work per drive via sharded, batch-scored ObserveDay. Both paths are
// score-equivalent (checked here before timing, and pinned bit-exactly
// by the internal/features and internal/serve equivalence suites).
func runServeBench(path string, scale float64) {
	const serveDays = 7

	fleetCfg := simfleet.DefaultConfig()
	fleetCfg.Seed = 1
	fleetCfg.FailureScale = scale
	fleet, err := simfleet.Simulate(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := core.TrainOnFleet(fleet.Data, fleet.Tickets, core.DefaultConfig("I"))
	if err != nil {
		log.Fatal(err)
	}
	policy := dataset.DefaultGapPolicy()

	// Vendor I's records, day-major (the serving arrival order), split
	// into history and the serve window.
	byDay := make(map[int][]dataset.Record)
	var days []int
	drives, records := 0, 0
	fleet.Data.Each(func(s *dataset.DriveSeries) {
		if s.Vendor != "I" {
			return
		}
		drives++
		records += len(s.Records)
		for i := range s.Records {
			d := s.Records[i].Day
			if len(byDay[d]) == 0 {
				days = append(days, d)
			}
			byDay[d] = append(byDay[d], s.Records[i])
		}
	})
	sort.Ints(days)
	splitIdx := len(days) - serveDays
	splitDay := days[splitIdx]
	window := make([][]dataset.Record, 0, serveDays)
	windowRecords := 0
	for _, d := range days[splitIdx:] {
		window = append(window, byDay[d])
		windowRecords += len(byDay[d])
	}
	hist, err := dataset.FrameFromDataset(fleet.Data.Until(splitDay - 1))
	if err != nil {
		log.Fatal(err)
	}
	histFrame := hist.FilterVendor("I")

	newScorer := func(workers int) *serve.Scorer {
		sc, err := serve.New(model, serve.Options{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		return sc
	}
	serveSession := func(sc *serve.Scorer) []serve.Assessment {
		if _, err := sc.ReplayFrame(histFrame); err != nil {
			log.Fatal(err)
		}
		var out []serve.Assessment
		for _, batch := range window {
			as, _, err := sc.ObserveDay(batch)
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, as...)
		}
		return out
	}
	seedSession := func() map[[2]interface{}]float64 {
		ag, err := agent.New(model, agent.Options{GapPolicy: policy})
		if err != nil {
			log.Fatal(err)
		}
		out := make(map[[2]interface{}]float64)
		for _, d := range days {
			for _, rec := range byDay[d] {
				as, err := ag.Observe(rec)
				if err != nil {
					log.Fatal(err)
				}
				if d >= splitDay && !as.Dropped {
					out[[2]interface{}{as.SerialNumber, as.Day}] = as.Probability
				}
			}
		}
		return out
	}

	// Equivalence gate: the two paths must deliver bit-identical
	// serve-window scores before their times mean anything.
	served := serveSession(newScorer(0))
	windowRows := 0
	seedScores := seedSession()
	for i := range served {
		if served[i].Dropped {
			continue
		}
		windowRows++
		if served[i].Interpolated {
			continue // Observe only reports the record's own day
		}
		want, ok := seedScores[[2]interface{}{served[i].SerialNumber, served[i].Day}]
		if !ok || math.Float64bits(want) != math.Float64bits(served[i].Probability) {
			log.Fatalf("serve bench: %s day %d: sharded score %v, seed path %v",
				served[i].SerialNumber, served[i].Day, served[i].Probability, want)
		}
	}

	fmt.Printf("serving benchmarks: %d vendor-I drives, %d history records, %d-day serve window (%d drive-days delivered per session)\n",
		drives, records-windowRecords, serveDays, windowRows)

	gcBench := func(name string, fn func(b *testing.B)) Result {
		runtime.GC()
		return benchFn(name, fn)
	}

	seedReplay := gcBench("ServeSession/observe_full_replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seedSession()
		}
	})
	session1 := gcBench("ServeSession/bootstrap_daily/workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			serveSession(newScorer(1))
		}
	})
	sessionP := gcBench("ServeSession/bootstrap_daily/parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			serveSession(newScorer(0))
		}
	})
	// Steady state: a scorer that is already caught up serves one more
	// window. The bootstrap runs off the clock, so this is the pure
	// per-day marginal cost — the number a long-running sweep pays.
	daily1 := gcBench("ServeSteadyState/daily/workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sc := newScorer(1)
			if _, err := sc.ReplayFrame(histFrame); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, batch := range window {
				if _, _, err := sc.ObserveDay(batch); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	report := ServeReport{
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Dataset: map[string]int{
			"drives":          drives,
			"records":         records,
			"serve_days":      serveDays,
			"delivered_rows":  windowRows,
			"history_records": records - windowRecords,
		},
		Benchmarks: []Result{seedReplay, session1, sessionP, daily1},
		Speedups: map[string]ServeSpeedup{
			// Whole sessions deliver the same windowRows drive-days, so
			// these ratios are plain wall-clock ratios.
			"daily_sweep_serial":   serveRatio(seedReplay, windowRows, session1, windowRows),
			"daily_sweep_parallel": serveRatio(seedReplay, windowRows, sessionP, windowRows),
			// Marginal per-drive-day cost: the seed path's is its whole
			// replay spread over every row it scored, the engine's is
			// the caught-up ObserveDay window alone.
			"steady_state_serial": serveRatio(seedReplay, records, daily1, windowRows),
		},
	}

	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for _, key := range []string{"daily_sweep_serial", "daily_sweep_parallel", "steady_state_serial"} {
		s := report.Speedups[key]
		fmt.Printf("%-30s %6.2fx faster per delivered drive-day (%.0f ns -> %.0f ns)\n",
			key, s.TimeRatio, s.SeedNsPerDriveDay, s.ServeNsPerDrDay)
	}
	fmt.Printf("written to %s\n", path)
}
