// Command mfpabench measures the tree-ensemble training hot path on
// the standard simulated fleet and records the histogram engine's
// speedup over the exact sort-based splitter in a JSON file, seeding
// the repository's performance trajectory. It runs each configuration
// through testing.Benchmark so the numbers are directly comparable to
// `go test -bench` output.
//
// Usage:
//
//	mfpabench [-out BENCH_train.json] [-scale 0.1] [-trees 50] [-rounds 60] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/gbdt"
	"repro/internal/sampling"
	"repro/internal/simfleet"
)

// Result is one benchmark row of the output file.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Speedup compares the histogram engine against the exact engine.
type Speedup struct {
	Exact      Result  `json:"exact"`
	Histogram  Result  `json:"histogram"`
	TimeRatio  float64 `json:"time_ratio"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// Report is the BENCH_train.json schema.
type Report struct {
	GoVersion   string             `json:"go_version"`
	GoMaxProcs  int                `json:"go_max_procs"`
	GeneratedAt string             `json:"generated_at"`
	Dataset     map[string]int     `json:"dataset"`
	Benchmarks  []Result           `json:"benchmarks"`
	Speedups    map[string]Speedup `json:"speedups"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfpabench: ")
	testing.Init() // register test.* flags so test.benchtime is settable

	var (
		out       = flag.String("out", "BENCH_train.json", "output JSON path")
		scale     = flag.Float64("scale", 0.1, "failure-count scale of the simulated fleet")
		trees     = flag.Int("trees", 50, "random forest ensemble size")
		rounds    = flag.Int("rounds", 60, "GBDT boosting rounds")
		benchtime = flag.Duration("benchtime", time.Second, "target time per benchmark")

		predictOut   = flag.String("predict-out", "BENCH_predict.json", "predict report path (empty disables the scoring benchmarks)")
		predictTrain = flag.Int("predict-train-rows", 50000, "training rows of the wide scoring workload")
		predictProbe = flag.Int("predict-probe-rows", 100000, "probe rows of the wide scoring workload")

		searchOut = flag.String("search-out", "BENCH_search.json", "search report path (empty disables the SampleSet/view benchmarks)")

		pipelineOut = flag.String("pipeline-out", "BENCH_pipeline.json", "pipeline report path (empty disables the frame data-plane benchmarks)")

		serveOut = flag.String("serve-out", "BENCH_serve.json", "serving report path (empty disables the incremental scoring benchmarks)")

		ioOut = flag.String("io-out", "BENCH_io.json", "telemetry container report path (empty disables the CSV-vs-MFPAC benchmarks)")

		// Pre-refactor BenchmarkForestTrain numbers, measured at the
		// commit before this engine landed (see Makefile bench target);
		// when given, the report records the old-vs-new speedup too.
		baseRef    = flag.String("baseline-ref", "", "commit the baseline numbers were measured at")
		baseNs     = flag.Float64("baseline-ns", 0, "seed-commit BenchmarkForestTrain ns/op")
		baseBytes  = flag.Int64("baseline-bytes", 0, "seed-commit BenchmarkForestTrain B/op")
		baseAllocs = flag.Int64("baseline-allocs", 0, "seed-commit BenchmarkForestTrain allocs/op")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		log.Fatal(err)
	}

	train, allSamples, prepared, err := standardTrainingSet(*scale)
	if err != nil {
		log.Fatal(err)
	}
	_, pos := ml.ClassCounts(train)
	fmt.Printf("standard simulated fleet training set: %d samples (%d positive), %d features\n",
		len(train), pos, len(train[0].X))

	benchmark := func(set []ml.Sample, name string, trainer ml.Trainer) Result {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trainer.Train(set); err != nil {
					b.Fatal(err)
				}
			}
		})
		res := Result{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		fmt.Printf("  %-28s %12.0f ns/op %12d B/op %9d allocs/op\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		return res
	}
	rfHist := benchmark(train, "ForestTrain/fleet/histogram", &forest.Trainer{Trees: *trees, MaxDepth: 12, Seed: 1})
	rfExact := benchmark(train, "ForestTrain/fleet/exact", &forest.Trainer{Trees: *trees, MaxDepth: 12, Seed: 1, Bins: -1})
	gbHist := benchmark(train, "GBDTTrain/fleet/histogram", &gbdt.Trainer{Rounds: *rounds, MaxDepth: 4, Subsample: 0.8, Seed: 1})
	gbExact := benchmark(train, "GBDTTrain/fleet/exact", &gbdt.Trainer{Rounds: *rounds, MaxDepth: 4, Subsample: 0.8, Seed: 1, Bins: -1})

	// The same workloads as the package benchmarks, so the recorded
	// ratios line up with `go test -bench BenchmarkForestTrain`.
	ringsTrain := rings(2000, 1)
	moonsTrain := moons(1000, 1)
	bfHist := benchmark(ringsTrain, "BenchmarkForestTrain/histogram", &forest.Trainer{Trees: 50, MaxDepth: 10, Seed: 1})
	bfExact := benchmark(ringsTrain, "BenchmarkForestTrain/exact", &forest.Trainer{Trees: 50, MaxDepth: 10, Seed: 1, Bins: -1})
	bgHist := benchmark(moonsTrain, "BenchmarkGBDTTrain/histogram", &gbdt.Trainer{Rounds: 60, MaxDepth: 4, Subsample: 0.8, Seed: 1})
	bgExact := benchmark(moonsTrain, "BenchmarkGBDTTrain/exact", &gbdt.Trainer{Rounds: 60, MaxDepth: 4, Subsample: 0.8, Seed: 1, Bins: -1})

	report := Report{
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Dataset: map[string]int{
			"samples":  len(train),
			"positive": pos,
			"features": len(train[0].X),
		},
		Benchmarks: []Result{rfHist, rfExact, gbHist, gbExact, bfHist, bfExact, bgHist, bgExact},
		Speedups: map[string]Speedup{
			"forest_fleet":           ratio(rfExact, rfHist),
			"gbdt_fleet":             ratio(gbExact, gbHist),
			"benchmark_forest_train": ratio(bfExact, bfHist),
			"benchmark_gbdt_train":   ratio(bgExact, bgHist),
		},
	}
	if *baseNs > 0 {
		name := "BenchmarkForestTrain/seed"
		if *baseRef != "" {
			name += "@" + *baseRef
		}
		seed := Result{Name: name, NsPerOp: *baseNs, BytesPerOp: *baseBytes, AllocsPerOp: *baseAllocs}
		report.Benchmarks = append(report.Benchmarks, seed)
		report.Speedups["benchmark_forest_train_vs_seed"] = ratio(seed, bfHist)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	keys := []string{"forest_fleet", "gbdt_fleet", "benchmark_forest_train", "benchmark_gbdt_train"}
	if *baseNs > 0 {
		keys = append(keys, "benchmark_forest_train_vs_seed")
	}
	for _, key := range keys {
		s := report.Speedups[key]
		fmt.Printf("%-30s %6.2fx faster, %6.2fx fewer allocations\n", key, s.TimeRatio, s.AllocRatio)
	}
	fmt.Printf("written to %s\n", *out)

	if *predictOut != "" {
		fmt.Printf("scoring benchmarks: wide %d train / %d probe rows, fleet %d train / %d probe rows\n",
			*predictTrain, *predictProbe, len(train), len(allSamples))
		runPredictBench(*predictOut, *predictTrain, *predictProbe, train, allSamples)
	}

	if *searchOut != "" {
		runSearchBench(*searchOut, prepared)
	}

	if *pipelineOut != "" {
		runPipelineBench(*pipelineOut, *scale)
	}

	if *serveOut != "" {
		runServeBench(*serveOut, *scale)
	}

	if *ioOut != "" {
		runIOBench(*ioOut, *scale)
	}
}

func ratio(exact, hist Result) Speedup {
	s := Speedup{Exact: exact, Histogram: hist}
	if hist.NsPerOp > 0 {
		s.TimeRatio = exact.NsPerOp / hist.NsPerOp
	}
	if hist.AllocsPerOp > 0 {
		s.AllocRatio = float64(exact.AllocsPerOp) / float64(hist.AllocsPerOp)
	}
	return s
}

// rings mirrors the forest package's BenchmarkForestTrain dataset: two
// concentric ring-ish classes, non-linear but solvable by axis-aligned
// ensembles.
func rings(n int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	var out []ml.Sample
	for i := 0; i < n; i++ {
		x := r.Float64()*4 - 2
		y := r.Float64()*4 - 2
		label := 0
		if x*x+y*y < 1.2 {
			label = 1
		}
		out = append(out, ml.Sample{X: []float64{x, y}, Y: label})
	}
	return out
}

// moons mirrors the gbdt package's BenchmarkGBDTTrain dataset.
func moons(n int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	var out []ml.Sample
	for i := 0; i < n; i++ {
		t := r.Float64() * math.Pi
		noise := func() float64 { return 0.15 * r.NormFloat64() }
		out = append(out,
			ml.Sample{X: []float64{math.Cos(t) + noise(), math.Sin(t) + noise()}, Y: 0},
			ml.Sample{X: []float64{1 - math.Cos(t) + noise(), 0.5 - math.Sin(t) + noise()}, Y: 1},
		)
	}
	return out
}

// standardTrainingSet reproduces mfpatrain's default data path: the
// standard simulated fleet, vendor I, SFWB features, time-based
// segmentation, 3:1 under-sampling — the exact training set every
// grid-search and feature-selection experiment hammers. It also
// returns the full (pre-split, pre-undersampling) sample set, which is
// the fleet-wide scoring workload of the predict benchmarks.
func standardTrainingSet(scale float64) (train, all []ml.Sample, p *core.Prepared, err error) {
	fleetCfg := simfleet.DefaultConfig()
	fleetCfg.Seed = 1
	fleetCfg.FailureScale = scale
	fleet, err := simfleet.Simulate(fleetCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := core.DefaultConfig("I")
	p, err = core.Prepare(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	all, err = p.BuildSamples()
	if err != nil {
		return nil, nil, nil, err
	}
	split, _ := sampling.SplitFraction(all, p.Config.TrainFrac)
	train, err = sampling.UnderSample(split, p.Config.NegativeRatio, p.Config.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	return train, all, p, nil
}
