package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/simfleet"
)

// PipelineSpeedup compares the columnar frame data plane against the
// record-based path it replaced.
type PipelineSpeedup struct {
	Record     Result  `json:"record"`
	Frame      Result  `json:"frame"`
	TimeRatio  float64 `json:"time_ratio"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// PipelineReport is the BENCH_pipeline.json schema.
type PipelineReport struct {
	GoVersion   string                     `json:"go_version"`
	GoMaxProcs  int                        `json:"go_max_procs"`
	GeneratedAt string                     `json:"generated_at"`
	Dataset     map[string]int             `json:"dataset"`
	Benchmarks  []Result                   `json:"benchmarks"`
	Speedups    map[string]PipelineSpeedup `json:"speedups"`
}

func pipelineRatio(record, frame Result) PipelineSpeedup {
	s := PipelineSpeedup{Record: record, Frame: frame}
	if frame.NsPerOp > 0 {
		s.TimeRatio = record.NsPerOp / frame.NsPerOp
	}
	if frame.AllocsPerOp > 0 {
		s.AllocRatio = float64(record.AllocsPerOp) / float64(frame.AllocsPerOp)
	}
	return s
}

// runPipelineBench measures the telemetry data plane stage by stage —
// fleet simulation, the fused clean→cumulate→extract preprocessing, and
// the whole simulate→SampleSet path — on the record representation
// (one struct plus two count vectors per drive-day) versus the columnar
// drive-day arena. Both paths produce bit-identical sample sets (the
// equivalence tests in internal/dataset, internal/features, and
// internal/core pin this), so every ratio is a pure representation win.
func runPipelineBench(path string, scale float64) {
	fleetCfg := simfleet.DefaultConfig()
	fleetCfg.Seed = 1
	fleetCfg.FailureScale = scale
	coreCfg := core.DefaultConfig("I")
	// Prepare applies this default internally; the standalone
	// clean+cumulate comparison below needs it spelled out.
	gapPolicy := dataset.DefaultGapPolicy()

	fmt.Println("pipeline benchmarks: columnar frame data plane vs record path")

	// gcBench collects before each measurement so one benchmark's heap
	// (warm fleets run to hundreds of MB) does not tax its neighbours'
	// GC cycles.
	gcBench := func(name string, fn func(b *testing.B)) Result {
		runtime.GC()
		return benchFn(name, fn)
	}

	// Stage 1 — simulation: per-record structs and count vectors versus
	// direct emission into one pre-sized arena.
	simRecord := gcBench("Simulate/record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := simfleet.Simulate(fleetCfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	simFrame := gcBench("Simulate/frame", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := simfleet.SimulateFrame(fleetCfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Stage 2 — preprocessing on warm inputs, record representation
	// first. The record path clones the fleet per stage; the fused pass
	// traverses each drive once into a counted output arena. Warm
	// inputs are dropped as soon as their benchmarks finish so each
	// stage runs against a comparable live heap.
	recFleet, err := simfleet.Simulate(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}
	datasetInfo := map[string]int{
		"drives":  recFleet.Data.Drives(),
		"records": recFleet.Data.Len(),
		"days":    fleetCfg.Days,
	}
	rawFrame, err := dataset.FrameFromDataset(recFleet.Data)
	if err != nil {
		log.Fatal(err)
	}
	cleanRecord := gcBench("CleanCumulate/record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, _, err := dataset.CleanDiscontinuityWorkers(recFleet.Data, gapPolicy, coreCfg.Workers)
			if err != nil {
				b.Fatal(err)
			}
			if err := dataset.Cumulate(out); err != nil {
				b.Fatal(err)
			}
		}
	})
	cleanFrame := gcBench("CleanCumulate/frame", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := dataset.PreparePipeline(rawFrame, dataset.PipelineOptions{
				Policy: gapPolicy, Workers: coreCfg.Workers,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rawFrame = nil
	prepRecord := gcBench("PrepareExtract/record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := core.Prepare(recFleet.Data, recFleet.Tickets, coreCfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.BuildSampleSet(); err != nil {
				b.Fatal(err)
			}
		}
	})
	recFleet = nil
	frameFleet, err := simfleet.SimulateFrame(fleetCfg)
	if err != nil {
		log.Fatal(err)
	}
	prepFrame := gcBench("PrepareExtract/frame", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := core.PrepareFrame(frameFleet.Frame, frameFleet.Tickets, coreCfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.BuildSampleSet(); err != nil {
				b.Fatal(err)
			}
		}
	})
	frameFleet = nil

	// End to end — simulate→clean→cumulate→label→SampleSet, the full
	// telemetry data plane in front of every training run, with no warm
	// state retained.
	e2eRecord := gcBench("SimulateToSampleSet/record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fleet, err := simfleet.Simulate(fleetCfg)
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.Prepare(fleet.Data, fleet.Tickets, coreCfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.BuildSampleSet(); err != nil {
				b.Fatal(err)
			}
		}
	})
	e2eFrame := gcBench("SimulateToSampleSet/frame", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fleet, err := simfleet.SimulateFrame(fleetCfg)
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.PrepareFrame(fleet.Frame, fleet.Tickets, coreCfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.BuildSampleSet(); err != nil {
				b.Fatal(err)
			}
		}
	})

	report := PipelineReport{
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Dataset:     datasetInfo,
		Benchmarks: []Result{
			simRecord, simFrame, cleanRecord, cleanFrame,
			prepRecord, prepFrame, e2eRecord, e2eFrame,
		},
		Speedups: map[string]PipelineSpeedup{
			"simulate":        pipelineRatio(simRecord, simFrame),
			"clean_cumulate":  pipelineRatio(cleanRecord, cleanFrame),
			"prepare_extract": pipelineRatio(prepRecord, prepFrame),
			"end_to_end":      pipelineRatio(e2eRecord, e2eFrame),
		},
	}

	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for _, key := range []string{"simulate", "clean_cumulate", "prepare_extract", "end_to_end"} {
		s := report.Speedups[key]
		fmt.Printf("%-30s %6.2fx faster, %6.2fx fewer allocations\n", key, s.TimeRatio, s.AllocRatio)
	}
	fmt.Printf("written to %s\n", path)
}
