// Predict-side benchmarks: the flattened batch inference engine
// (internal/ml/predict) against the per-row Classifier interface path,
// recorded in BENCH_predict.json. Two workloads bracket the deployment
// envelope:
//
//   - wide: a production-shaped ensemble (100 trees at depth 16 on 32
//     noisy features; ~half a million nodes) scoring a 100k-row probe —
//     the regime the arena layout and blocked kernel are built for.
//   - fleet: the standard simulated-fleet models scoring every sample
//     of the fleet, the shape core.EvaluateSamplesAt and the agent's
//     daily scoring pass actually run.
//
// Each workload measures the batch path at GOMAXPROCS workers and at
// workers=1, plus the per-row interface path (batch detection
// suppressed) at GOMAXPROCS workers as the speedup denominator.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/gbdt"
)

// perRowOnly hides a model's ml.BatchClassifier implementation so
// ml.ScoreBatch falls back to the per-row interface path.
type perRowOnly struct{ ml.Classifier }

// ScoreSpeedup compares batch against per-row scoring of one model on
// one workload.
type ScoreSpeedup struct {
	PerRow    Result  `json:"per_row"`
	Batch     Result  `json:"batch"`
	TimeRatio float64 `json:"time_ratio"`
}

// PredictReport is the BENCH_predict.json schema.
type PredictReport struct {
	GoVersion   string                    `json:"go_version"`
	GoMaxProcs  int                       `json:"go_max_procs"`
	GeneratedAt string                    `json:"generated_at"`
	Workloads   map[string]map[string]int `json:"workloads"`
	Benchmarks  []Result                  `json:"benchmarks"`
	Speedups    map[string]ScoreSpeedup   `json:"speedups"`
}

// wideNoisy generates the production-shaped scoring workload: 32
// features, a nonlinear signal plus label noise, so trees grow to the
// depth limit the way forests do on real telemetry.
func wideNoisy(n int, seed int64) []ml.Sample {
	r := rand.New(rand.NewSource(seed))
	out := make([]ml.Sample, n)
	for i := range out {
		x := make([]float64, 32)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		s := x[0]*x[1] + x[2] - x[3]*x[4] + 0.5*r.NormFloat64()
		y := 0
		if s > 0 {
			y = 1
		}
		out[i] = ml.Sample{X: x, Y: y}
	}
	return out
}

// benchScore times one scoring configuration over a prebuilt design
// matrix, warming the classifier first so lazy arena compilation stays
// outside the measurement.
func benchScore(name string, clf ml.Classifier, xs [][]float64, workers int) Result {
	out := make([]float64, len(xs))
	ml.ScoreBatch(clf, xs, out, workers)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ml.ScoreBatch(clf, xs, out, workers)
		}
	})
	res := Result{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	fmt.Printf("  %-36s %12.0f ns/op %9d allocs/op\n", name, res.NsPerOp, res.AllocsPerOp)
	return res
}

// ensembleNodes sums a trained model's tree node counts.
func ensembleNodes(clf ml.Classifier) int {
	n := 0
	switch m := clf.(type) {
	case *forest.Model:
		for _, t := range m.Export().Trees {
			n += len(t.Nodes)
		}
	case *gbdt.Model:
		for _, t := range m.Export().Trees {
			n += len(t.Nodes)
		}
	}
	return n
}

// runPredictBench trains both workloads' ensembles, benchmarks batch
// vs per-row scoring, and writes the report to path.
func runPredictBench(path string, wideTrain, wideProbe int, fleetTrain, fleetProbe []ml.Sample) {
	report := PredictReport{
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Workloads:   map[string]map[string]int{},
		Speedups:    map[string]ScoreSpeedup{},
	}

	type workload struct {
		name         string
		train, probe []ml.Sample
		rf           *forest.Trainer
		gb           *gbdt.Trainer
	}
	workloads := []workload{
		{
			name:  "wide",
			train: wideNoisy(wideTrain, 1),
			probe: wideNoisy(wideProbe, 2),
			rf:    &forest.Trainer{Trees: 100, MaxDepth: 16, Seed: 1},
			gb:    &gbdt.Trainer{Rounds: 100, MaxDepth: 8, Subsample: 0.8, Seed: 1},
		},
		{
			name:  "fleet",
			train: fleetTrain,
			probe: fleetProbe,
			rf:    &forest.Trainer{Trees: 50, MaxDepth: 12, Seed: 1},
			gb:    &gbdt.Trainer{Rounds: 60, MaxDepth: 4, Subsample: 0.8, Seed: 1},
		},
	}

	for _, w := range workloads {
		xs := make([][]float64, len(w.probe))
		for i := range w.probe {
			xs[i] = w.probe[i].X
		}
		info := map[string]int{
			"train_rows": len(w.train),
			"probe_rows": len(w.probe),
			"features":   len(w.probe[0].X),
		}
		for _, algo := range []string{"forest", "gbdt"} {
			var trainer ml.Trainer
			if algo == "forest" {
				trainer = w.rf
			} else {
				trainer = w.gb
			}
			clf, err := trainer.Train(w.train)
			if err != nil {
				log.Fatal(err)
			}
			info[algo+"_nodes"] = ensembleNodes(clf)
			prefix := fmt.Sprintf("ScoreBatch/%s/%s", w.name, algo)
			batch := benchScore(prefix+"/batch", clf, xs, 0)
			serial := benchScore(prefix+"/batch-serial", clf, xs, 1)
			perRow := benchScore(prefix+"/per-row", perRowOnly{clf}, xs, 0)
			report.Benchmarks = append(report.Benchmarks, batch, serial, perRow)
			s := ScoreSpeedup{PerRow: perRow, Batch: batch}
			if batch.NsPerOp > 0 {
				s.TimeRatio = perRow.NsPerOp / batch.NsPerOp
			}
			report.Speedups[fmt.Sprintf("predict_%s_%s", w.name, algo)] = s
		}
		report.Workloads[w.name] = info
	}

	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for _, w := range workloads {
		for _, algo := range []string{"forest", "gbdt"} {
			key := fmt.Sprintf("predict_%s_%s", w.name, algo)
			fmt.Printf("%-30s %6.2fx faster than per-row\n", key, report.Speedups[key].TimeRatio)
		}
	}
	fmt.Printf("written to %s\n", path)
}
