package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/search"
	"repro/internal/sampling"
)

// ViewSpeedup compares the columnar SampleSet/view engine against the
// per-candidate slice-copy representation it replaced.
type ViewSpeedup struct {
	Slice      Result  `json:"slice"`
	View       Result  `json:"view"`
	TimeRatio  float64 `json:"time_ratio"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// SearchReport is the BENCH_search.json schema.
type SearchReport struct {
	GoVersion   string                 `json:"go_version"`
	GoMaxProcs  int                    `json:"go_max_procs"`
	GeneratedAt string                 `json:"generated_at"`
	Dataset     map[string]int         `json:"dataset"`
	Benchmarks  []Result               `json:"benchmarks"`
	Speedups    map[string]ViewSpeedup `json:"speedups"`
}

// benchFn runs an arbitrary benchmark body through testing.Benchmark.
func benchFn(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	res := Result{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	fmt.Printf("  %-34s %12.0f ns/op %12d B/op %9d allocs/op\n",
		name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

func viewRatio(slice, view Result) ViewSpeedup {
	s := ViewSpeedup{Slice: slice, View: view}
	if view.NsPerOp > 0 {
		s.TimeRatio = slice.NsPerOp / view.NsPerOp
	}
	if view.AllocsPerOp > 0 {
		s.AllocRatio = float64(slice.AllocsPerOp) / float64(view.AllocsPerOp)
	}
	return s
}

// runSearchBench measures the bin-once columnar engine against the
// slice-copy representation on the search-shaped workloads the paper's
// methodology hammers: sample construction, candidate sweeps that
// historically rebuilt samples per configuration, CV fold + resampling
// construction, hyper-parameter grid search, and sequential forward
// selection.
func runSearchBench(path string, p *core.Prepared) {
	cfg := p.Config
	fmt.Println("search benchmarks: SampleSet/view engine vs slice representation")

	// Sample construction: one row-struct + vector per record versus
	// per-drive chunks appended into one flat arena.
	buildSlice := benchFn("BuildSamples/slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.BuildSamples(); err != nil {
				b.Fatal(err)
			}
		}
	})
	buildView := benchFn("BuildSampleSet/columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.BuildSampleSet(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Shared inputs for the primitive comparisons.
	samples, err := p.BuildSamples()
	if err != nil {
		log.Fatal(err)
	}
	set, err := p.BuildSampleSet()
	if err != nil {
		log.Fatal(err)
	}
	trainS, testS := sampling.SplitFraction(samples, cfg.TrainFrac)
	usS, err := sampling.UnderSample(trainS, cfg.NegativeRatio, cfg.Seed)
	if err != nil {
		log.Fatal(err)
	}
	trainV, testV := sampling.SplitFractionView(set.All(), cfg.TrainFrac)
	usV, err := sampling.UnderSampleView(trainV, cfg.NegativeRatio, cfg.Seed)
	if err != nil {
		log.Fatal(err)
	}

	// Candidate sweep at pipeline granularity: the seed-representation
	// cost of evaluating one configuration was a full rebuild — sample
	// extraction, chronological split, under-sampling, and training
	// with a private quantile binning. The columnar engine builds and
	// bins once and hands every candidate a zero-copy view.
	depths := []int{4, 6, 8, 10, 12, 14}
	const sweepTrees = 20
	sweepSlice := benchFn("GridSweep/rebuild_per_candidate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range depths {
				cand, err := p.BuildSamples()
				if err != nil {
					b.Fatal(err)
				}
				tr, _ := sampling.SplitFraction(cand, cfg.TrainFrac)
				us, err := sampling.UnderSample(tr, cfg.NegativeRatio, cfg.Seed)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := (&forest.Trainer{Trees: sweepTrees, MaxDepth: d, Seed: 1}).Train(us); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	sweepView := benchFn("GridSweep/bin_once_views", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cand, err := p.BuildSampleSet()
			if err != nil {
				b.Fatal(err)
			}
			tr, _ := sampling.SplitFractionView(cand.All(), cfg.TrainFrac)
			us, err := sampling.UnderSampleView(tr, cfg.NegativeRatio, cfg.Seed)
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range depths {
				if _, err := (&forest.Trainer{Trees: sweepTrees, MaxDepth: d, Seed: 1}).TrainView(us); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	// CV fold construction plus per-fold under-sampling — the shape
	// calibrateThreshold and every grid-search candidate consume.
	cvSlice := benchFn("CVFolds/slice_copies", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			folds, err := sampling.TimeSeriesCV(trainS, cfg.CVFolds)
			if err != nil {
				b.Fatal(err)
			}
			for _, f := range folds {
				if _, err := sampling.UnderSample(f.Train, cfg.NegativeRatio, cfg.Seed); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	cvView := benchFn("CVFolds/index_views", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			folds, err := sampling.TimeSeriesCVView(trainV, cfg.CVFolds)
			if err != nil {
				b.Fatal(err)
			}
			for _, f := range folds {
				if _, err := sampling.UnderSampleView(f.Train, cfg.NegativeRatio, cfg.Seed); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	// Hyper-parameter grid search over the training window (the
	// Section III-C(4) sweep): per-(combo, fold) private binning versus
	// one shared binned matrix. The set-wide matrix is warmed first —
	// the bin-once contract puts its construction before any sweep, and
	// the GridSweep pair above already charges the amortized build+bin
	// cost to the view engine.
	if _, err := (&forest.Trainer{Trees: 1, MaxDepth: 2, Seed: 1}).TrainView(usV); err != nil {
		log.Fatal(err)
	}
	factory := func(params map[string]float64) ml.Trainer {
		return &forest.Trainer{Trees: sweepTrees, MaxDepth: int(params["max_depth"]), Seed: 1}
	}
	grid := search.Grid{"max_depth": {6, 10, 14}}
	gsSlice := benchFn("GridSearch/slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := search.GridSearchWorkers(factory, grid, usS, cfg.CVFolds, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	gsView := benchFn("GridSearch/views", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := search.GridSearchSet(factory, grid, usV, cfg.CVFolds, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Sequential forward selection: per-candidate masked copies of
	// train and validation versus column sub-views of the shared arena.
	names := p.Extractor.Names()
	sfsTrainer := &forest.Trainer{Trees: 10, MaxDepth: 8, Seed: 1, Parallelism: 1}
	sfsSlice := benchFn("ForwardSelect/slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := search.ForwardSelectWorkers(sfsTrainer, usS, testS, names, 3, 1e-4, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	sfsView := benchFn("ForwardSelect/views", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := search.ForwardSelectSet(sfsTrainer, usV, testV, names, 3, 1e-4, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	report := SearchReport{
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Dataset: map[string]int{
			"samples":        len(samples),
			"train":          usV.Len(),
			"features":       set.Width(),
			"cv_folds":       cfg.CVFolds,
			"sweep_configs":  len(depths),
			"grid_points":    len(grid["max_depth"]),
			"sfs_step_limit": 3,
		},
		Benchmarks: []Result{
			buildSlice, buildView, sweepSlice, sweepView,
			cvSlice, cvView, gsSlice, gsView, sfsSlice, sfsView,
		},
		Speedups: map[string]ViewSpeedup{
			"build":       viewRatio(buildSlice, buildView),
			"grid_sweep":  viewRatio(sweepSlice, sweepView),
			"cv_folds":    viewRatio(cvSlice, cvView),
			"grid_search": viewRatio(gsSlice, gsView),
			"sfs":         viewRatio(sfsSlice, sfsView),
		},
	}

	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for _, key := range []string{"build", "grid_sweep", "cv_folds", "grid_search", "sfs"} {
		s := report.Speedups[key]
		fmt.Printf("%-30s %6.2fx faster, %6.2fx fewer allocations\n", key, s.TimeRatio, s.AllocRatio)
	}
	fmt.Printf("written to %s\n", path)
}
