package mfpa

// End-to-end integration test across the whole stack: simulate a fleet,
// train per-vendor models through the fleet service, publish envelopes,
// load them into client agents, and verify the agents catch failing
// drives on live telemetry — the complete loop of the paper's Fig. 1.

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/fleetops"
	"repro/internal/modelio"
	"repro/internal/simfleet"
)

func TestFullDeploymentLoop(t *testing.T) {
	cfg := simfleet.TinyConfig()
	cfg.Days = 120
	cfg.FailureScale = 0.05
	fleet, err := simfleet.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet side: the service trains vendor I as of day 100.
	svc, err := fleetops.New(fleetops.Options{IterationDays: 60})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := svc.Train(fleet.Data, fleet.Tickets, "I", 100)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Eval.TPR() < 0.5 {
		t.Fatalf("service-trained model TPR = %g", rec.Eval.TPR())
	}

	// Distribution: publish → load, as the update channel would.
	blob, err := svc.Publish("I")
	if err != nil {
		t.Fatal(err)
	}
	deployed, err := modelio.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}

	// Client side: replay raw telemetry of drives that fail *after* the
	// training cutoff; the agent must alarm on most of them before
	// death and stay quiet on healthy machines.
	ag, err := agent.New(deployed, agent.Options{AlarmAfter: 2, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	var futureFaulty, caught int
	var healthySeen, healthyAlarmed int
	for sn, truth := range fleet.Truth {
		if truth.Vendor != "I" {
			continue
		}
		series, ok := fleet.Data.Series(sn)
		if !ok {
			continue
		}
		switch {
		case truth.Kind == "faulty" && truth.FailDay > 100:
			futureFaulty++
			for i := range series.Records {
				as, err := ag.Observe(series.Records[i])
				if err != nil {
					t.Fatal(err)
				}
				if as.Alarmed {
					caught++
					if len(as.TopFactors) == 0 {
						t.Error("alarm without explanation despite Explain option")
					}
					break
				}
			}
		case truth.Kind == "healthy" && healthySeen < 60:
			healthySeen++
			for i := range series.Records {
				as, err := ag.Observe(series.Records[i])
				if err != nil {
					t.Fatal(err)
				}
				if as.Alarmed {
					healthyAlarmed++
					break
				}
			}
		}
	}
	if futureFaulty == 0 {
		t.Skip("no post-cutoff failures in this tiny fleet")
	}
	if rate := float64(caught) / float64(futureFaulty); rate < 0.6 {
		t.Fatalf("agent caught %d of %d post-cutoff failures", caught, futureFaulty)
	}
	if healthySeen > 0 && float64(healthyAlarmed)/float64(healthySeen) > 0.1 {
		t.Fatalf("agent alarmed on %d of %d healthy drives", healthyAlarmed, healthySeen)
	}
}
