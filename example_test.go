package mfpa_test

import (
	"fmt"
	"log"

	mfpa "repro"
)

// ExampleSimulateFleet shows the minimal fleet-generation call; the
// returned result carries telemetry, tickets, and ground truth for all
// four Table VI vendors.
func ExampleSimulateFleet() {
	cfg := mfpa.DefaultFleetConfig()
	cfg.Days = 90
	cfg.FailureScale = 0.02
	fleet, err := mfpa.SimulateFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(fleet.Stats), "vendors,", fleet.FaultyCount() > 0)
	// Output: 4 vendors, true
}

// ExampleDefaultConfig shows the paper's best configuration.
func ExampleDefaultConfig() {
	cfg := mfpa.DefaultConfig("I")
	fmt.Println(cfg.Group, cfg.Algorithm, cfg.Vendor)
	// Output: SFWB RF I
}

// ExampleTrain runs the whole pipeline on a small simulated fleet and
// prints whether the model beat the coin-flip bar — the structural
// outcome that is stable across platforms.
func ExampleTrain() {
	cfg := mfpa.DefaultFleetConfig()
	cfg.Days = 90
	cfg.FailureScale = 0.02
	fleet, err := mfpa.SimulateFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	model, report, err := mfpa.Train(fleet.Data, fleet.Tickets, mfpa.DefaultConfig("I"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(model.TrainerName, report.Eval.TPR() > 0.5, report.Eval.FPR() < 0.2)
	// Output: RF true true
}
