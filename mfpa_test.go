package mfpa

import (
	"math"
	"testing"
)

func smallFleet(t *testing.T) *Fleet {
	t.Helper()
	cfg := DefaultFleetConfig()
	cfg.Days = 120
	cfg.FailureScale = 0.04
	fleet, err := SimulateFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

func TestFacadeEndToEnd(t *testing.T) {
	fleet := smallFleet(t)
	cfg := DefaultConfig("I")
	model, report, err := Train(fleet.Data, fleet.Tickets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if model.TrainerName != "RF" {
		t.Fatalf("trainer = %s", model.TrainerName)
	}
	if tpr := report.Eval.TPR(); math.IsNaN(tpr) || tpr < 0.5 {
		t.Fatalf("TPR = %g", tpr)
	}
}

func TestFacadeGroupsAndAlgos(t *testing.T) {
	groups := []FeatureGroup{SFWB, SFW, SFB, SF, S, W, B}
	names := []string{"SFWB", "SFW", "SFB", "SF", "S", "W", "B"}
	for i, g := range groups {
		if g.String() != names[i] {
			t.Errorf("group %d renders %q, want %q", i, g.String(), names[i])
		}
	}
	for _, a := range []Algorithm{Bayes, SVM, RF, GBDT, CNNLSTM} {
		if a == "" {
			t.Error("empty algorithm constant")
		}
	}
}

func TestFacadePrepare(t *testing.T) {
	fleet := smallFleet(t)
	p, err := Prepare(fleet.Data, fleet.Tickets, DefaultConfig("I"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Data.Drives() == 0 || p.LabelStats.Labelled == 0 {
		t.Fatal("preparation produced nothing")
	}
}
